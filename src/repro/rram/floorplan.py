"""Chip-level floorplanning of a BNN classifier onto RRAM macros.

The Fig. 5 architecture replicates a fixed-size building block — a 2T2R
array with its decoders, XNOR sense amplifiers and shared popcount logic —
under one memory controller.  The paper's test vehicle is a 1K-synapse
(32x32) macro (Fig. 2); a deployed classifier therefore occupies a *grid*
of such macros per layer, and the interesting engineering numbers are how
many, how well they are filled, and what the resulting silicon area and
one-time programming cost are.

:class:`ChipFloorplan` computes exactly that from the folded layer shapes,
using the same technology constants as :class:`repro.rram.energy.EnergyModel`
so area numbers are consistent across the repository.

A placement is also *executable*: :meth:`LayerPlacement.shards` turns the
tile grid into an explicit shard map — one :class:`MacroShard` per macro,
carrying the exact row/column slice of the weight matrix that macro holds
(edge shards are partial).  The sharded multi-macro backend
(:class:`repro.rram.accelerator.ShardedController`) programs one simulated
chip per shard from this map, which is what ties the floorplan's placement
math to actual execution instead of report-only accounting.

Several models can be **co-resident**: :class:`ChipPlacer` packs every
tenant's shards onto one shared macro pool (first-fit decreasing over
shard word-line counts, so partial tail shards of different tenants share
a physical macro) with a pooled spare reserve, and reports the
macro-count and utilization win over per-model chips.  Word-line sharing
is sound because a scan senses one word line at a time — rows of
different tenants on the same macro never interact electrically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.bitops import WORD_BITS
from repro.rram.energy import EnergyModel

__all__ = ["MacroGeometry", "MacroShard", "LayerPlacement", "ChipFloorplan",
           "ChipPlacer", "ChipPlacement", "ShardAssignment",
           "plan_classifier", "plan_model"]


@dataclass(frozen=True)
class MacroGeometry:
    """One replicated array macro (the paper's is 32x32 synapses)."""

    rows: int = 32
    cols: int = 32

    def __post_init__(self):
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(
                f"macro must have positive dimensions, got "
                f"{self.rows}x{self.cols}")

    @property
    def synapses(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class MacroShard:
    """One macro's slice of a layer placement: the executable shard map
    entry.

    ``row_start:row_stop`` are the output neurons (word lines) this chip
    holds, ``col_start:col_stop`` the fan-in slice (bit-line columns).
    Edge shards of a non-divisible layer are partial: they still occupy a
    full macro but only ``rows x cols`` of its synapses hold real weights.
    """

    index: int
    grid_row: int
    grid_col: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int
    macro: MacroGeometry

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def cols(self) -> int:
        return self.col_stop - self.col_start

    @property
    def synapses_used(self) -> int:
        return self.rows * self.cols

    @property
    def utilization(self) -> float:
        """Fill fraction of this one macro (1.0 for interior shards)."""
        return self.synapses_used / self.macro.synapses

    # -- word-grid metadata (stacked fast plans) -------------------------
    # A layer's activation batch packs once into 64-bit words at full
    # width; these properties locate the shard's fan-in slice on that
    # shared word grid, so program-time plans can pre-align weight words
    # instead of re-packing misaligned activation slices per scan.
    @property
    def word_start(self) -> int:
        """First word of the shared activation grid this shard reads."""
        return self.col_start // WORD_BITS

    @property
    def word_stop(self) -> int:
        """One past the last word this shard reads (ceil boundary)."""
        return -(-self.col_stop // WORD_BITS)

    @property
    def n_words(self) -> int:
        """Words of the shared grid spanned by this shard's fan-in."""
        return self.word_stop - self.word_start

    @property
    def bit_offset(self) -> int:
        """Bit position of ``col_start`` inside its first grid word."""
        return self.col_start - WORD_BITS * self.word_start


@dataclass
class LayerPlacement:
    """How one binary dense layer maps onto the macro grid.

    The layer's ``(out_features, in_features)`` weight matrix is cut into
    row x column tiles of macro size; edge tiles are partially filled.
    """

    name: str
    out_features: int
    in_features: int
    macro: MacroGeometry
    #: Spare macros provisioned for this layer (fault tolerance); set by
    #: the sharded controller when a fault map is in play.
    spare_macros: int = 0
    #: Shard indices that were remapped onto spares (dead macros).
    remapped: tuple[int, ...] = ()
    #: Owning model when the layer is part of a multi-tenant deployment
    #: (``None`` for single-model floorplans — reports omit the column).
    tenant: str | None = None
    tile_grid: tuple[int, int] = field(init=False)

    def __post_init__(self):
        if self.out_features <= 0 or self.in_features <= 0:
            raise ValueError(
                f"layer {self.name!r} has empty dimensions "
                f"({self.out_features}, {self.in_features})")
        self.tile_grid = (-(-self.out_features // self.macro.rows),
                          -(-self.in_features // self.macro.cols))
        # Tail-shard invariant: the ceil division must provision at least
        # every real synapse (the tail is a partial macro, never dropped)
        # and utilization can therefore never exceed 1.0.
        if self.synapses_provisioned < self.synapses_used:
            raise ValueError(
                f"layer {self.name!r}: provisioned "
                f"{self.synapses_provisioned} synapses for "
                f"{self.synapses_used} weights — tail shard lost")

    @property
    def n_macros(self) -> int:
        rows, cols = self.tile_grid
        return rows * cols

    @property
    def synapses_used(self) -> int:
        return self.out_features * self.in_features

    @property
    def synapses_provisioned(self) -> int:
        return self.n_macros * self.macro.synapses

    @property
    def utilization(self) -> float:
        """Fraction of provisioned synapses that hold real weights."""
        return self.synapses_used / self.synapses_provisioned

    @property
    def activation_words(self) -> int:
        """Width of the shared activation word grid (64-bit words needed
        to pack one full-fan-in activation row) — the grid every shard's
        :attr:`MacroShard.word_start`/:attr:`MacroShard.word_stop` range
        indexes into."""
        return -(-self.in_features // WORD_BITS)

    def shards(self) -> list[MacroShard]:
        """The executable shard map: one :class:`MacroShard` per macro.

        Shards are emitted in row-major grid order (fan-out stripes outer,
        fan-in slices inner) — the scan order the sharded controller's
        reduction stage relies on.  The map is validated on every call:
        shards tile the weight matrix exactly (every weight accounted
        once, tails included) and never over-claim a macro.
        """
        rows, cols = self.tile_grid
        mr, mc = self.macro.rows, self.macro.cols
        shards = []
        for i in range(rows):
            for j in range(cols):
                shards.append(MacroShard(
                    index=i * cols + j, grid_row=i, grid_col=j,
                    row_start=i * mr,
                    row_stop=min((i + 1) * mr, self.out_features),
                    col_start=j * mc,
                    col_stop=min((j + 1) * mc, self.in_features),
                    macro=self.macro))
        used = sum(s.synapses_used for s in shards)
        if used != self.synapses_used or \
                any(s.utilization > 1.0 for s in shards):
            raise RuntimeError(
                f"layer {self.name!r}: shard map covers {used} synapses, "
                f"expected {self.synapses_used}")
        return shards

    def row(self) -> tuple[str, ...]:
        rows, cols = self.tile_grid
        return (self.name, f"{self.out_features}x{self.in_features}",
                f"{rows}x{cols}", str(self.n_macros),
                f"{self.utilization:.1%}")


@dataclass
class ChipFloorplan:
    """Aggregate plan for a whole classifier."""

    placements: list[LayerPlacement]
    energy: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self):
        if not self.placements:
            raise ValueError("a floorplan needs at least one layer")

    @property
    def n_macros(self) -> int:
        return sum(p.n_macros for p in self.placements)

    @property
    def n_devices(self) -> int:
        """Two RRAM devices per provisioned synapse (2T2R)."""
        return 2 * sum(p.synapses_provisioned for p in self.placements)

    @property
    def utilization(self) -> float:
        used = sum(p.synapses_used for p in self.placements)
        provisioned = sum(p.synapses_provisioned for p in self.placements)
        return used / provisioned

    @property
    def spare_macros(self) -> int:
        """Spare macros provisioned across all layers."""
        return sum(p.spare_macros for p in self.placements)

    @property
    def remapped_macros(self) -> int:
        """Dead macros remapped onto spares across all layers."""
        return sum(len(p.remapped) for p in self.placements)

    def area_um2(self) -> dict[str, float]:
        """Area by component, from the shared technology constants.

        Per macro: 2T2R cells, one PCSA per column, and the column share of
        the popcount tree.  The memory controller is one block per chip.
        """
        cells = sense = popcount = 0.0
        controller = self.energy.ecc_decoder_area_um2  # controller-sized block
        for p in self.placements:
            per_macro_cells = p.macro.synapses * self.energy.cell_area_2t2r_um2
            per_macro_sense = p.macro.cols * self.energy.pcsa_area_um2
            per_macro_pop = (p.macro.cols
                             * self.energy.popcount_area_um2_per_bit)
            cells += p.n_macros * per_macro_cells
            sense += p.n_macros * per_macro_sense
            popcount += p.n_macros * per_macro_pop
        total = cells + sense + popcount + controller
        return {"cells": cells, "sense": sense, "popcount": popcount,
                "controller": controller, "total": total}

    def programming_cost(self) -> dict[str, float]:
        """One-time weight programming: device writes and energy (pJ).

        Only real weights are written; unused devices stay in HRS from
        forming and cost nothing per deployment.
        """
        writes = 2 * sum(p.synapses_used for p in self.placements)
        return {"device_writes": float(writes),
                "energy_pj": writes * self.energy.rram_program_pj}

    def macro_report(self) -> str:
        """Per-macro view of the plan: shard fill and scan energy.

        For each layer: how many macros it occupies, how many of them are
        partial tail shards, the worst/mean per-macro utilization from the
        shard map, and the energy of one full word-line scan of a single
        macro (every synapse sensed through the XNOR PCSA plus its share
        of the popcount tree) from the shared technology constants.

        Multi-tenant floorplans (any placement with a ``tenant``) add a
        per-row ``Model`` column and a per-tenant occupancy footer.
        """
        from repro.experiments.tables import render_table
        tenancy = any(p.tenant is not None for p in self.placements)
        rows = []
        for p in self.placements:
            shards = p.shards()
            tails = sum(1 for s in shards if s.utilization < 1.0)
            fills = [s.utilization for s in shards]
            scan_pj = p.macro.synapses * (
                self.energy.xnor_pcsa_sense_fj
                + self.energy.popcount_fj_per_bit) / 1e3
            row = (p.name, str(p.n_macros), str(tails),
                   f"{min(fills):.1%}",
                   f"{sum(fills) / len(fills):.1%}",
                   f"{scan_pj:.2f}")
            if tenancy:
                row = (p.tenant or "-",) + row
            rows.append(row)
        headers = ["Layer", "Macros", "Tails", "Min fill", "Mean fill",
                   "Scan pJ/macro"]
        if tenancy:
            headers = ["Model"] + headers
        table = render_table(
            "Per-macro shard map "
            f"({self.placements[0].macro.rows}x"
            f"{self.placements[0].macro.cols} macros)",
            headers,
            rows)
        if tenancy:
            table += "\nPer-tenant occupancy:\n" + "\n".join(
                self._tenant_occupancy_lines())
        if self.spare_macros or self.remapped_macros:
            degraded = []
            for p in self.placements:
                if p.spare_macros or p.remapped:
                    dead = ",".join(str(m) for m in p.remapped) or "-"
                    degraded.append(
                        f"  {p.name}: {len(p.remapped)} dead "
                        f"(shards {dead}) remapped / "
                        f"{p.spare_macros} spare(s) provisioned")
            table += "\nSpare macros (degraded placements):\n" \
                + "\n".join(degraded)
        return table

    def _tenant_occupancy_lines(self) -> list[str]:
        """Per-tenant fill/utilization summary (macro_report footer)."""
        tenants: dict[str, list[LayerPlacement]] = {}
        for p in self.placements:
            tenants.setdefault(p.tenant or "-", []).append(p)
        total = sum(p.synapses_provisioned for p in self.placements)
        lines = []
        for tenant, group in tenants.items():
            used = sum(p.synapses_used for p in group)
            provisioned = sum(p.synapses_provisioned for p in group)
            macros = sum(p.n_macros for p in group)
            lines.append(
                f"  {tenant}: {macros} macro(s), fill "
                f"{used / provisioned:.1%}, "
                f"{provisioned / total:.1%} of provisioned synapses")
        return lines

    def report(self) -> str:
        from repro.experiments.tables import render_table
        table = render_table(
            "Classifier floorplan on "
            f"{self.placements[0].macro.rows}x"
            f"{self.placements[0].macro.cols} macros",
            ["Layer", "Weights", "Tile grid", "Macros", "Utilization"],
            [p.row() for p in self.placements])
        area = self.area_um2()
        prog = self.programming_cost()
        lines = [table, "",
                 f"Total macros: {self.n_macros}   devices: "
                 f"{self.n_devices:,}   overall utilization: "
                 f"{self.utilization:.1%}",
                 f"Area: {area['total'] / 1e6:.3f} mm^2 "
                 f"(cells {area['cells'] / 1e6:.3f}, sense "
                 f"{area['sense'] / 1e6:.3f}, popcount "
                 f"{area['popcount'] / 1e6:.3f}, controller "
                 f"{area['controller'] / 1e6:.3f})",
                 f"Programming: {prog['device_writes']:,.0f} writes, "
                 f"{prog['energy_pj'] / 1e6:.2f} uJ one-time"]
        if self.spare_macros or self.remapped_macros:
            lines.append(
                f"Spares: {self.remapped_macros} dead macro(s) remapped, "
                f"{self.spare_macros} spare(s) provisioned")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Co-resident (multi-tenant) placement onto one macro pool.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardAssignment:
    """One tenant shard's physical home on the shared pool: which macro
    holds it and at which word-line offset."""

    tenant: str
    layer: str
    shard: MacroShard
    pool_macro: int
    row_offset: int

    @property
    def rows(self) -> int:
        return self.shard.rows


@dataclass
class ChipPlacement:
    """The result of co-resident placement: every tenant shard assigned
    to a (pool macro, word-line offset) slot, plus a pooled spare
    reserve."""

    macro: MacroGeometry
    assignments: list[ShardAssignment]
    spare_macros: int = 0
    #: Macro count each tenant would provision deployed alone (its own
    #: chip, its own spares) — the "before" of the packing win.
    solo_macros: dict[str, int] = field(default_factory=dict)

    @property
    def n_macros(self) -> int:
        """Pool macros actually holding word lines (spares excluded)."""
        if not self.assignments:
            return 0
        return max(a.pool_macro for a in self.assignments) + 1

    @property
    def n_macros_provisioned(self) -> int:
        return self.n_macros + self.spare_macros

    @property
    def tenants(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for a in self.assignments:
            seen.setdefault(a.tenant)
        return tuple(seen)

    @property
    def synapses_used(self) -> int:
        return sum(a.shard.synapses_used for a in self.assignments)

    @property
    def utilization(self) -> float:
        """Real weights over every provisioned synapse of the pool
        (spare macros included — they are silicon too)."""
        provisioned = self.n_macros_provisioned * self.macro.synapses
        return self.synapses_used / provisioned if provisioned else 0.0

    @property
    def solo_macros_total(self) -> int:
        return sum(self.solo_macros.values())

    def tenant_occupancy(self) -> dict[str, dict]:
        """Per-tenant pool occupancy: macros touched, word lines held,
        synapses used, and fill of the touched macros."""
        occupancy: dict[str, dict] = {}
        for a in self.assignments:
            entry = occupancy.setdefault(
                a.tenant, {"macros": set(), "word_lines": 0,
                           "synapses_used": 0, "shards": 0})
            entry["macros"].add(a.pool_macro)
            entry["word_lines"] += a.rows
            entry["synapses_used"] += a.shard.synapses_used
            entry["shards"] += 1
        for entry in occupancy.values():
            entry["macros"] = len(entry["macros"])
        return occupancy

    def shared_macros(self) -> int:
        """Pool macros holding word lines of more than one tenant — the
        tail shards the packing actually merged."""
        owners: dict[int, set[str]] = {}
        for a in self.assignments:
            owners.setdefault(a.pool_macro, set()).add(a.tenant)
        return sum(1 for tenants in owners.values() if len(tenants) > 1)

    def report(self) -> str:
        """Co-resident pool summary with the before/after macro math."""
        from repro.experiments.tables import render_table
        occupancy = self.tenant_occupancy()
        rows = []
        for tenant, entry in occupancy.items():
            capacity = entry["macros"] * self.macro.synapses
            rows.append((tenant, str(entry["shards"]),
                         str(entry["macros"]),
                         str(entry["word_lines"]),
                         f"{entry['synapses_used'] / capacity:.1%}",
                         str(self.solo_macros.get(tenant, "-"))))
        table = render_table(
            f"Co-resident pool ({self.macro.rows}x{self.macro.cols} "
            "macros)",
            ["Model", "Shards", "Macros", "Word lines", "Fill",
             "Solo macros"],
            rows)
        before = self.solo_macros_total
        after = self.n_macros_provisioned
        lines = [table,
                 f"Pool: {self.n_macros} macro(s) + {self.spare_macros} "
                 f"pooled spare(s) = {after} provisioned "
                 f"({self.shared_macros()} shared by several tenants); "
                 f"solo chips need {before}",
                 f"Utilization: {self.utilization:.1%} co-resident"]
        if before:
            lines[-1] += (f" vs {self.synapses_used / (before * self.macro.synapses):.1%} "
                          "across solo chips"
                          f" ({before - after:+d} macro(s) saved)"
                          .replace("+-", "-"))
        return "\n".join(lines)


class ChipPlacer:
    """Pack several tenants' layer placements onto one macro pool.

    First-fit decreasing over shard word-line counts: shards are sorted
    by the word lines they need (largest first, deterministic
    tenant/layer/shard tie-break) and each drops into the first pool
    macro with enough free word lines.  Full-height shards fill whole
    macros exactly as they would solo; the win comes from partial tail
    shards of *different* layers and tenants sharing one macro.

    ``spares`` reserves whole macros at the end of the pool for the
    PR 7 dead-macro remap; ``"auto"`` pools the per-tenant spare
    demand (the maximum any one tenant provisioned for itself) instead
    of summing it — co-residency shares the reserve.  ``capacity``
    bounds the pool (raises when the tenants do not fit).
    """

    def __init__(self, macro: MacroGeometry | None = None, *,
                 capacity: int | None = None, spares="auto"):
        self.macro = macro or MacroGeometry()
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.spares = spares

    def place(self, tenants) -> ChipPlacement:
        """``tenants`` maps model name -> its :class:`LayerPlacement`
        list (e.g. ``backend.placements`` after a sharded compile)."""
        items: list[tuple[str, LayerPlacement, MacroShard]] = []
        for tenant, placements in tenants.items():
            for placement in placements:
                if placement.macro != self.macro:
                    raise ValueError(
                        f"tenant {tenant!r} layer {placement.name!r} was "
                        f"placed on {placement.macro.rows}x"
                        f"{placement.macro.cols} macros; the pool is "
                        f"{self.macro.rows}x{self.macro.cols} — tenants "
                        "must share the chip geometry")
                for shard in placement.shards():
                    items.append((tenant, placement, shard))
        if not items:
            raise ValueError("nothing to place: no tenants with layers")

        # First-fit decreasing on word lines; the tie-break keeps the
        # assignment deterministic for identical inputs.
        order = {name: i for i, name in enumerate(tenants)}
        items.sort(key=lambda item: (-item[2].rows, order[item[0]],
                                     item[1].name, item[2].index))
        free_rows: list[int] = []
        assignments: list[ShardAssignment] = []
        for tenant, placement, shard in items:
            for index, free in enumerate(free_rows):
                if free >= shard.rows:
                    break
            else:
                index = len(free_rows)
                free_rows.append(self.macro.rows)
            assignments.append(ShardAssignment(
                tenant=tenant, layer=placement.name, shard=shard,
                pool_macro=index,
                row_offset=self.macro.rows - free_rows[index]))
            free_rows[index] -= shard.rows

        if self.spares == "auto":
            spare_macros = max(
                (sum(p.spare_macros for p in placements)
                 for placements in tenants.values()), default=0)
        else:
            spare_macros = int(self.spares)
            if spare_macros < 0:
                raise ValueError(f"spares must be >= 0, got {self.spares}")
        if self.capacity is not None and \
                len(free_rows) + spare_macros > self.capacity:
            raise ValueError(
                f"tenants need {len(free_rows)} macro(s) + "
                f"{spare_macros} spare(s) but the pool capacity is "
                f"{self.capacity}")
        solo = {tenant: sum(p.n_macros + p.spare_macros
                            for p in placements)
                for tenant, placements in tenants.items()}
        return ChipPlacement(macro=self.macro, assignments=assignments,
                             spare_macros=spare_macros, solo_macros=solo)


def plan_classifier(layer_shapes: list[tuple[int, int]],
                    macro: MacroGeometry | None = None,
                    names: list[str] | None = None,
                    energy: EnergyModel | None = None) -> ChipFloorplan:
    """Plan a classifier given ``(out_features, in_features)`` per layer.

    ``names`` defaults to ``fc1, fc2, ...`` (the repository's classifier
    convention).
    """
    macro = macro or MacroGeometry()
    if names is None:
        names = [f"fc{i + 1}" for i in range(len(layer_shapes))]
    if len(names) != len(layer_shapes):
        raise ValueError(
            f"{len(names)} names for {len(layer_shapes)} layers")
    placements = [LayerPlacement(name, out_f, in_f, macro)
                  for name, (out_f, in_f) in zip(names, layer_shapes)]
    return ChipFloorplan(placements, energy or EnergyModel())


def plan_model(model, macro: MacroGeometry | None = None,
               energy: EnergyModel | None = None) -> ChipFloorplan:
    """Plan every *binary* layer of a model onto the macro grid.

    Walks the module tree and places each binarized layer the way its
    hardware mapping stores it: dense layers by their weight matrix,
    convolutions by one flattened kernel per word-line row (the
    weight-stationary mapping of :mod:`repro.rram.conv` / ``conv2d``),
    depthwise convolutions as per-channel kernel rows.  Real-weight layers
    are skipped — they are not resident in the RRAM fabric.
    """
    from repro.nn.binary import (BinaryConv1d, BinaryConv2d,
                                 BinaryDepthwiseConv2d, BinaryLinear)

    shapes: list[tuple[int, int]] = []
    names: list[str] = []
    for name, module in model.named_modules():
        if isinstance(module, BinaryLinear):
            shape = (module.out_features, module.in_features)
        elif isinstance(module, BinaryConv1d):
            shape = (module.out_channels,
                     module.in_channels * module.kernel_size)
        elif isinstance(module, BinaryConv2d):
            kh, kw = module.kernel_size
            shape = (module.out_channels, module.in_channels * kh * kw)
        elif isinstance(module, BinaryDepthwiseConv2d):
            kh, kw = module.kernel_size
            shape = (module.channels, kh * kw)
        else:
            continue
        shapes.append(shape)
        names.append(name or type(module).__name__)
    if not shapes:
        raise ValueError(
            f"{type(model).__name__} has no binary layers to place "
            "(is it in REAL mode?)")
    return plan_classifier(shapes, macro, names, energy)
