"""RRAM hardware substrate: devices, cells, sensing, arrays, accelerator.

Implements the paper's hardware contribution end to end:

* device statistics with endurance-dependent variability
  (:mod:`~repro.rram.device`);
* 1T1R and differential 2T2R synapses (:mod:`~repro.rram.cell`);
* precharge sense amplifiers, plain and XNOR-augmented
  (:mod:`~repro.rram.sense`);
* the kilobit memory macro with decoders (:mod:`~repro.rram.array`);
* the Fig. 5 in-memory BNN layer architecture and one-call deployment of
  trained classifiers (:mod:`~repro.rram.accelerator`);
* endurance/BER measurement and fault injection (:mod:`~repro.rram.errors`);
* the trial-batched Monte-Carlo engine with deterministic per-trial RNG
  streams (:mod:`~repro.rram.mc`);
* the Hamming-ECC digital alternative, including an executable
  ECC-protected weight store (:mod:`~repro.rram.ecc`);
* lifetime fault injection: stuck-at maps and dead-macro degradation
  (:mod:`~repro.rram.faults`), retention aging and yield
  (:mod:`~repro.rram.reliability`);
* energy/area accounting (:mod:`~repro.rram.energy`).
"""

from repro.rram.device import (DeviceParameters, ResistiveState, RRAMDevice,
                               analytic_ber_1t1r, analytic_ber_2t2r)
from repro.rram.sense import (SenseParameters, PrechargeSenseAmplifier,
                              XnorPCSA)
from repro.rram.cell import OneT1RCell, TwoT2RCell
from repro.rram.array import RRAMArray
from repro.rram.accelerator import (AcceleratorConfig, MemoryController,
                                    ShardedController, MultiTenantController,
                                    InMemoryDenseLayer, InMemoryOutputLayer,
                                    InMemoryClassifier, fold_classifier,
                                    deploy_classifier, classifier_input_bits)
from repro.rram.errors import (EnduranceExperiment, EnduranceResult,
                               inject_bit_errors, corrupt_folded)
from repro.rram.ecc import (EccMemoryController, HammingCode,
                            simulate_protected_storage)
from repro.rram.faults import FaultMap
from repro.rram.energy import EnergyModel, InferenceCost
from repro.rram.conv import (FoldedBinaryConv1d, fold_conv1d_batchnorm_sign,
                             InMemoryConv1dLayer, max_pool_bits_1d)
from repro.rram.programming import (ProgramVerifyConfig, VerifyStatistics,
                                    program_row_verified,
                                    program_array_verified)
from repro.rram.reliability import (LifetimeConfig, RetentionModel,
                                    retention_ber_1t1r, retention_ber_2t2r,
                                    arrhenius_acceleration, equivalent_hours,
                                    YieldAnalysis, YieldResult)
from repro.rram.analog import (AnalogConfig, AnalogCrossbar, AnalogLinear,
                               PeripheryModel)
from repro.rram.floorplan import (MacroGeometry, MacroShard, LayerPlacement,
                                  ChipFloorplan, ChipPlacer, ChipPlacement,
                                  ShardAssignment, plan_classifier,
                                  plan_model)
from repro.rram.conv2d import (FoldedBinaryConv2d, fold_conv2d_batchnorm_sign,
                               fold_depthwise2d_batchnorm_sign,
                               InMemoryConv2dLayer, max_pool_bits_2d)
from repro.rram.mc import (read_bit_errors, shard_streams, site_stream,
                           trial_chunks, trial_streams)

__all__ = [
    "DeviceParameters", "ResistiveState", "RRAMDevice",
    "analytic_ber_1t1r", "analytic_ber_2t2r",
    "SenseParameters", "PrechargeSenseAmplifier", "XnorPCSA",
    "OneT1RCell", "TwoT2RCell",
    "RRAMArray",
    "AcceleratorConfig", "MemoryController", "ShardedController",
    "MultiTenantController",
    "InMemoryDenseLayer", "InMemoryOutputLayer", "InMemoryClassifier",
    "fold_classifier", "deploy_classifier", "classifier_input_bits",
    "EnduranceExperiment", "EnduranceResult", "inject_bit_errors",
    "corrupt_folded",
    "HammingCode", "EccMemoryController", "simulate_protected_storage",
    "FaultMap",
    "EnergyModel", "InferenceCost",
    "FoldedBinaryConv1d", "fold_conv1d_batchnorm_sign",
    "InMemoryConv1dLayer", "max_pool_bits_1d",
    "ProgramVerifyConfig", "VerifyStatistics", "program_row_verified",
    "program_array_verified",
    "LifetimeConfig", "RetentionModel",
    "retention_ber_1t1r", "retention_ber_2t2r",
    "arrhenius_acceleration", "equivalent_hours",
    "YieldAnalysis", "YieldResult",
    "AnalogConfig", "AnalogCrossbar", "AnalogLinear", "PeripheryModel",
    "MacroGeometry", "MacroShard", "LayerPlacement", "ChipFloorplan",
    "ChipPlacer", "ChipPlacement", "ShardAssignment",
    "plan_classifier", "plan_model",
    "FoldedBinaryConv2d", "fold_conv2d_batchnorm_sign",
    "fold_depthwise2d_batchnorm_sign", "InMemoryConv2dLayer",
    "max_pool_bits_2d",
    "read_bit_errors", "shard_streams", "site_stream", "trial_chunks",
    "trial_streams",
]
