"""In-memory execution of binarized *convolutional* layers.

The paper's Fig. 5 architecture targets fully connected layers, and notes
that "this type of architecture can be adapted for convolutional layers,
with a key decision between minimizing data movement and data reuse"
(§II-B, citing ISAAC/PRIME-style accelerators).  This module implements the
weight-stationary adaptation so the *all-binarized* EEG/ECG networks can be
executed on the simulated RRAM fabric end to end:

* a binary convolution is lowered to a dense XNOR-popcount: each output
  channel's flattened kernel is one word line; the input data controller
  streams receptive-field bit vectors (im2col order) onto the XNOR inputs;
* batch-norm + sign folds into a per-channel popcount threshold exactly as
  in the dense case — the threshold is shared by every spatial position of
  a channel;
* pooling and flattening stay in the digital periphery (they are cheap bit
  operations), as in the reference architectures.

Restrictions mirror the hardware: inputs must already be binary (so the
first convolution of a network, which sees analog signals, stays in the
digital front-end — standard BNN practice) and padding must be zero,
because a padded position has no ±1 encoding.  The paper's ECG network has
no conv padding, so its four inner convolutions deploy directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.binary import threshold_bits, to_bits, xnor_popcount
from repro.nn.conv import Conv1d
from repro.nn.norm import _BatchNorm
from repro.rram.accelerator import AcceleratorConfig, MemoryController
from repro.tensor.im2col import conv_output_length

__all__ = ["FoldedBinaryConv1d", "fold_conv1d_batchnorm_sign",
           "InMemoryConv1dLayer", "max_pool_bits_1d"]


@dataclass
class FoldedBinaryConv1d:
    """A binary 1-D convolution + batch-norm + sign folded for hardware.

    ``weight_bits``: ``(C_out, C_in * K)`` — one flattened kernel per
    output channel.  ``theta``/``gamma_sign``/``beta_sign`` are per output
    channel, shared over time positions.
    """

    weight_bits: np.ndarray
    in_channels: int
    kernel_size: int
    stride: int
    theta: np.ndarray
    gamma_sign: np.ndarray
    beta_sign: np.ndarray

    @property
    def out_channels(self) -> int:
        return self.weight_bits.shape[0]

    @property
    def fan_in(self) -> int:
        return self.in_channels * self.kernel_size

    def output_length(self, length: int) -> int:
        return conv_output_length(length, self.kernel_size, self.stride)

    def _patches(self, x_bits: np.ndarray) -> np.ndarray:
        """im2col over bit activations: ``(N, C, L)`` -> ``(N*L_out, C*K)``."""
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        if x_bits.ndim != 3 or x_bits.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, L) bits, got "
                f"{x_bits.shape}")
        n, c, length = x_bits.shape
        l_out = self.output_length(length)
        sn, sc, sl = x_bits.strides
        windows = np.lib.stride_tricks.as_strided(
            x_bits, shape=(n, c, l_out, self.kernel_size),
            strides=(sn, sc, sl * self.stride, sl), writeable=False)
        return windows.transpose(0, 2, 1, 3).reshape(
            n * l_out, c * self.kernel_size)

    def _threshold(self, dot: np.ndarray) -> np.ndarray:
        return threshold_bits(dot, self.theta[None, :],
                              self.gamma_sign[None, :],
                              self.beta_sign[None, :])

    def forward_bits(self, x_bits: np.ndarray) -> np.ndarray:
        """Exact integer inference: ``(N, C_in, L)`` bits ->
        ``(N, C_out, L_out)`` bits."""
        n, _, length = np.asarray(x_bits).shape
        l_out = self.output_length(length)
        patches = self._patches(x_bits)
        pc = xnor_popcount(patches, self.weight_bits)
        dot = 2 * pc - self.fan_in
        out = self._threshold(dot)
        return out.reshape(n, l_out, self.out_channels).transpose(0, 2, 1)


def fold_conv1d_batchnorm_sign(conv, bn: _BatchNorm) -> FoldedBinaryConv1d:
    """Fold ``sign(BN(conv_b(x)))`` into a popcount-threshold conv.

    ``conv`` may be a :class:`~repro.nn.BinaryConv1d` (weights binarized by
    sign) or a plain :class:`~repro.nn.Conv1d` whose weights are already
    ±1.  Padding must be zero — padded positions have no binary encoding on
    the XNOR fabric.
    """
    if conv.padding != 0:
        raise ValueError("only padding=0 convolutions map onto the binary "
                         f"fabric, got padding={conv.padding}")
    if isinstance(conv, Conv1d) and getattr(conv, "bias", None) is not None:
        raise ValueError("convolution bias is not representable; use "
                         "batch-norm for offsets")
    weights = conv.weight.data
    c_out, c_in, kernel = weights.shape
    theta = bn.effective_threshold()
    gamma_sign = np.sign(bn.gamma.data)
    beta_sign = np.where(np.sign(bn.beta.data) == 0, 1.0,
                         np.sign(bn.beta.data))
    return FoldedBinaryConv1d(
        weight_bits=to_bits(weights).reshape(c_out, c_in * kernel),
        in_channels=c_in,
        kernel_size=kernel,
        stride=conv.stride,
        theta=theta,
        gamma_sign=gamma_sign,
        beta_sign=beta_sign,
    )


class InMemoryConv1dLayer:
    """A folded binary convolution executed on RRAM tiles.

    Weight-stationary mapping: kernels live in the arrays; the input data
    controller scans receptive fields (one XNOR-read burst per field) and
    the shared popcount/threshold logic emits the output channel bits.

    An injected ``controller`` (e.g. a sharded
    :class:`~repro.rram.accelerator.ShardedController`) replaces the
    monolithic array; the im2col patch batches flow through its
    ``popcounts``/``popcounts_trials`` unchanged, so a stacked-shard fast
    plan built at controller construction applies to conv scans too.
    """

    def __init__(self, folded: FoldedBinaryConv1d,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None,
                 fast_path: bool | str = "auto",
                 controller=None):
        self.folded = folded
        self.controller = controller if controller is not None else \
            MemoryController(folded.weight_bits, config, rng, fast_path)

    def forward_bits(self, x_bits: np.ndarray,
                     rng=None, sense=None) -> np.ndarray:
        f = self.folded
        n, _, length = np.asarray(x_bits).shape
        l_out = f.output_length(length)
        patches = f._patches(x_bits)
        pc = self.controller.popcounts(patches, rng=rng, sense=sense)
        dot = 2 * pc - f.fan_in
        out = f._threshold(dot)
        return out.reshape(n, l_out, f.out_channels).transpose(0, 2, 1)

    def forward_bits_trials(self, x_bits: np.ndarray, rngs,
                            sense=None, trial_chunk=None) -> np.ndarray:
        """Trial-batched conv: ``(N, C, L)`` or ``(T, N, C, L)`` bits in,
        ``(T, N, C_out, L_out)`` out; trial ``t`` reads with ``rngs[t]``
        (bit-identical to a per-trial :meth:`forward_bits` loop)."""
        f = self.folded
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        shared = x_bits.ndim == 3
        if not shared and x_bits.shape[0] != len(rngs):
            raise ValueError(
                f"{x_bits.shape[0]} trial slices for {len(rngs)} streams")
        n, _, length = x_bits.shape if shared else x_bits.shape[1:]
        l_out = f.output_length(length)
        patches = f._patches(x_bits) if shared else np.stack(
            [f._patches(x_bits[t]) for t in range(len(rngs))])
        pc = self.controller.popcounts_trials(patches, rngs, sense=sense,
                                              trial_chunk=trial_chunk)
        out = f._threshold(2 * pc - f.fan_in)
        return out.reshape(len(rngs), n, l_out, f.out_channels) \
            .transpose(0, 1, 3, 2)


def max_pool_bits_1d(bits: np.ndarray, kernel: int,
                     stride: int | None = None) -> np.ndarray:
    """Max-pooling on activation bits (digital periphery).

    On ±1 activations max-pool is a logical OR over the window's bits —
    a handful of gates per output, which is why pooling stays outside the
    arrays.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 3:
        raise ValueError(f"expected (N, C, L) bits, got {bits.shape}")
    stride = stride or kernel
    n, c, length = bits.shape
    l_out = (length - kernel) // stride + 1
    sn, sc, sl = bits.strides
    windows = np.lib.stride_tricks.as_strided(
        bits, shape=(n, c, l_out, kernel),
        strides=(sn, sc, sl * stride, sl), writeable=False)
    return windows.max(axis=-1)
