"""Hamming error-correcting codes — the digital alternative the paper argues
against.

§II-B: conventional designs suppress RRAM bit errors with ECC, but "the
computation of error detection and correction is more complicated than the
one of binarized neural network" and it breaks the in-memory paradigm.  The
paper further reports that 2T2R gives error-rate benefits "similar to the
one of formal single error correction of equivalent redundancy".  To test
that claim quantitatively (benchmark XTRA1), this module implements:

* :class:`HammingCode` — single-error-correcting (SEC) Hamming codes of any
  number of parity bits, with optional shortening and an optional extended
  parity bit (SECDED).  ``HammingCode.secded_72_64()`` is the classic DRAM
  code; ``HammingCode(r=4)`` is the (15, 11) code; a rate-1/2 shortened code
  matches 2T2R's 2x redundancy.
* vectorized :meth:`encode` / :meth:`decode` over batches of data words;
* :func:`simulate_protected_storage` — push words through a binary
  symmetric channel at the measured raw BER and decode, returning the
  residual (post-correction) bit error rate.
"""

from __future__ import annotations

import numpy as np

from repro.rram.mc import READ_CHUNK_ELEMS

__all__ = ["HammingCode", "EccMemoryController",
           "simulate_protected_storage"]


class HammingCode:
    """Systematic Hamming SEC / SECDED code.

    Parameters
    ----------
    r:
        Number of Hamming parity bits; the base code is
        ``(2^r - 1, 2^r - 1 - r)``.
    data_bits:
        Shorten the code to carry only this many data bits (``k``); the
        dropped positions are fixed at zero and never transmitted.
    extended:
        Add an overall parity bit, upgrading SEC to SECDED (detects, but
        does not correct, double errors).
    """

    def __init__(self, r: int, data_bits: int | None = None,
                 extended: bool = False):
        if r < 2:
            raise ValueError(f"need at least 2 parity bits, got {r}")
        self.r = r
        n_full = 2 ** r - 1
        k_full = n_full - r
        self.k = k_full if data_bits is None else int(data_bits)
        if not 1 <= self.k <= k_full:
            raise ValueError(
                f"data_bits must be in [1, {k_full}], got {data_bits}")
        self.extended = extended
        # Positions 1..n_full; powers of two are parity positions.
        positions = np.arange(1, n_full + 1)
        is_parity = (positions & (positions - 1)) == 0
        data_positions = positions[~is_parity][:self.k]
        parity_positions = positions[is_parity]
        self.n = self.k + self.r + (1 if extended else 0)
        self._data_positions = data_positions
        self._parity_positions = parity_positions
        # Map used positions to codeword indices 0..n-1 (shortened layout:
        # kept positions in ascending order).
        used = np.sort(np.concatenate([data_positions, parity_positions]))
        self._used_positions = used
        self._pos_to_index = {int(p): i for i, p in enumerate(used)}
        # Parity-check relationships: parity bit i covers positions whose
        # i-th binary digit is 1.
        self._coverage = [(used & (1 << i)) != 0 for i in range(r)]

    @property
    def redundancy(self) -> float:
        """Stored bits per data bit (2T2R has redundancy exactly 2.0)."""
        return self.n / self.k

    @property
    def data_indices(self) -> list[int]:
        """Codeword indices (0..n-1) holding the ``k`` data bits, in data
        order — the systematic view of the shortened layout."""
        return [self._pos_to_index[int(p)] for p in self._data_positions]

    @staticmethod
    def secded_72_64() -> "HammingCode":
        """The (72, 64) extended Hamming code of server memories."""
        return HammingCode(r=7, data_bits=64, extended=True)

    @staticmethod
    def rate_half(k: int = 4) -> "HammingCode":
        """A shortened SEC code with redundancy as close to 2x as Hamming
        allows — the 'equivalent redundancy' comparison point for 2T2R.
        ``k=4`` with r=3 gives (7, 4) extended to (8, 4): exactly 2x."""
        return HammingCode(r=3, data_bits=k, extended=True)

    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``(..., k)`` data bits into ``(..., n)`` codewords."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] != self.k:
            raise ValueError(f"expected {self.k} data bits, got "
                             f"{data.shape[-1]}")
        lead = data.shape[:-1]
        hamming_len = self.k + self.r
        code = np.zeros(lead + (hamming_len,), dtype=np.uint8)
        code[..., self.data_indices] = data
        for i, covered in enumerate(self._coverage):
            parity_index = self._pos_to_index[1 << i]
            mask = covered.copy()
            mask[parity_index] = False
            code[..., parity_index] = code[..., mask].sum(axis=-1) % 2
        if self.extended:
            overall = code.sum(axis=-1, keepdims=True) % 2
            code = np.concatenate([code, overall.astype(np.uint8)], axis=-1)
        return code

    def decode(self, code: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decode ``(..., n)`` codewords.

        Returns ``(data, double_error_detected)``: the corrected data bits
        and, for SECDED codes, a boolean flag per word marking detected
        uncorrectable double errors (flags are all-False for plain SEC).
        """
        code = np.asarray(code, dtype=np.uint8)
        if code.shape[-1] != self.n:
            raise ValueError(f"expected {self.n} code bits, got "
                             f"{code.shape[-1]}")
        if self.extended:
            body = code[..., :-1].copy()
            overall = code[..., -1]
        else:
            body = code.copy()
            overall = None
        # Syndrome: for each parity relation, XOR of covered bits.
        syndrome = np.zeros(body.shape[:-1], dtype=np.int64)
        for i, covered in enumerate(self._coverage):
            bit = body[..., covered].sum(axis=-1) % 2
            syndrome += bit.astype(np.int64) << i
        error_position = syndrome          # 1-based position, 0 = no error
        if self.extended:
            parity_ok = (body.sum(axis=-1) + overall) % 2 == 0
            double_error = (error_position != 0) & parity_ok
        else:
            double_error = np.zeros(body.shape[:-1], dtype=bool)
        # Correct single errors (skip where a double error was flagged and
        # where the syndrome points at a shortened/unused position).
        flat_body = body.reshape(-1, body.shape[-1])
        flat_pos = error_position.reshape(-1)
        flat_double = double_error.reshape(-1)
        for w in np.flatnonzero((flat_pos != 0) & ~flat_double):
            index = self._pos_to_index.get(int(flat_pos[w]))
            if index is not None:
                flat_body[w, index] ^= 1
        body = flat_body.reshape(body.shape)
        return body[..., self.data_indices], double_error


class EccMemoryController:
    """A weight store that keeps the folded weights behind SECDED ECC.

    The digital alternative the paper argues against, made executable so
    the lifetime studies can compare it against bare 2T2R quantitatively:
    each output neuron's fan-in bits are chopped into ``code.k``-bit words,
    encoded to ``code.n`` stored bits, and programmed onto one RRAM array
    of ``out_features x stored_cols`` devices.  Reads fetch the stored
    words through the decoder into a digital buffer *once per scan* — the
    von Neumann pattern ECC forces — and the XNOR-popcount then runs
    digitally over the corrected weights.

    The API mirrors :class:`~repro.rram.accelerator.MemoryController`
    (``popcounts`` / ``popcounts_trials`` / meters), so the runtime layers
    accept either interchangeably; the per-trial stream contract holds
    because trial ``t``'s single weight fetch draws only from ``rngs[t]``.

    Noise-free configurations with no retention aging take a fast path:
    stuck-at faults are applied, the store is decoded once at program
    time, and scans run the packed digital kernels on the corrected bits.
    """

    read_chunk_elems = READ_CHUNK_ELEMS

    def __init__(self, weight_bits: np.ndarray,
                 config=None,
                 rng: np.random.Generator | None = None,
                 code: HammingCode | None = None,
                 fast_path: bool | str = "auto",
                 lifetime=None,
                 fault_map=None,
                 fault_key: int | tuple[int, ...] = ()):
        from repro.rram.accelerator import AcceleratorConfig, _noise_free
        config = (config or AcceleratorConfig()).resolved()
        self.config = config
        self.rng = rng or np.random.default_rng(config.seed)
        self.code = code or HammingCode.secded_72_64()
        weight_bits = np.asarray(weight_bits, dtype=np.uint8)
        if weight_bits.ndim != 2:
            raise ValueError(
                f"weight bits must be 2-D, got {weight_bits.shape}")
        self.out_features, self.in_features = weight_bits.shape
        self.n_code_words = -(-self.in_features // self.code.k)
        #: Stored bit-line columns per output row (data + parity).
        self.stored_cols = self.n_code_words * self.code.n

        if lifetime is not None and not lifetime.active:
            lifetime = None
        self.lifetime = lifetime
        if fault_map is not None and not fault_map.has_cell_faults:
            fault_map = None
        self.fault_map = fault_map
        self.fault_key = (int(fault_key),) if isinstance(fault_key, int) \
            else tuple(int(k) for k in fault_key)

        if fast_path not in (True, False, "auto"):
            raise ValueError("fast_path must be True, False or 'auto'")
        deterministic = _noise_free(config) and lifetime is None
        if fast_path is True and not deterministic:
            raise ValueError(
                "fast_path=True requires a noise-free configuration "
                "(zero device sigma, zero HRS drift, zero sense offset, "
                "no retention aging); use fast_path='auto' to dispatch")
        self.fast_path = deterministic if fast_path == "auto" \
            else bool(fast_path)

        # ECC decode meters (per stored word of ``code.n`` bits).
        self.ecc_words_decoded = 0
        self.ecc_words_corrected = 0
        self.ecc_double_errors = 0
        self.popcount_bit_ops = 0
        self._extra_sense_ops = 0

        # Encode: pad each fan-in row to a whole number of data words.
        padded = np.zeros((self.out_features, self.n_code_words * self.code.k),
                          dtype=np.uint8)
        padded[:, :self.in_features] = weight_bits
        stored = self.code.encode(
            padded.reshape(self.out_features, self.n_code_words, self.code.k)
        ).reshape(self.out_features, self.stored_cols)

        # Stuck-at faults land on the *stored* grid — parity devices are
        # as mortal as data devices, which is the point of measuring ECC
        # under the same defect population as the bare store.
        stuck_one = stuck_zero = None
        if fault_map is not None:
            stuck_one, stuck_zero = fault_map.cell_masks(
                (self.out_features, self.stored_cols), self.fault_key)
        self.n_stuck_cells = 0 if stuck_one is None \
            else int(stuck_one.sum() + stuck_zero.sum())

        self.array = None
        self.weight_words = None
        if self.fast_path:
            if stuck_one is not None:
                stored = np.array(stored, copy=True)
                stored[stuck_one] = 1
                stored[stuck_zero] = 0
            from repro.nn.bitops import pack_bits
            self.weight_words = pack_bits(self._decode_stored(stored))
            self._extra_sense_ops += stored.size   # one program-time fetch
            return
        from repro.rram.array import RRAMArray
        self.array = RRAMArray(self.out_features, self.stored_cols,
                               params=config.device, sense=config.sense,
                               rng=self.rng)
        self.array.program(stored)
        if stuck_one is not None:
            self.array.inject_stuck(stuck_one, stuck_zero)
        if lifetime is not None:
            self.array.age(lifetime.bake_hours(), lifetime.retention,
                           self.rng)

    # -- geometry / meters ----------------------------------------------
    @property
    def redundancy(self) -> float:
        """Stored devices per weight bit (the ECC overhead the occupancy
        reports meter; bare 2T2R is 1.0 on this scale — both store two
        devices per *stored* bit)."""
        return self.stored_cols / self.in_features

    @property
    def n_devices(self) -> int:
        return 2 * self.out_features * self.stored_cols

    @property
    def sense_ops(self) -> int:
        ops = self._extra_sense_ops
        if self.array is not None:
            ops += self.array.sense_ops
        return ops

    @property
    def ecc_bits_decoded(self) -> int:
        """Stored bits pushed through the decoder (energy metering hook:
        multiply by ``EnergyModel.ecc_decode_fj_per_bit``)."""
        return self.ecc_words_decoded * self.code.n

    def wear(self, cycles: int) -> None:
        if self.array is not None:
            self.array.wear(cycles)

    def reprogram(self) -> None:
        """Refresh the stored codewords (re-draws all resistances; aging
        restarts, stuck defects persist)."""
        if self.array is not None:
            self.array.program(self.array.weight_bits)

    # -- decode ----------------------------------------------------------
    def _decode_stored(self, stored_bits: np.ndarray) -> np.ndarray:
        """Decode one full fetch of the stored grid; meters every word."""
        words = stored_bits.reshape(self.out_features, self.n_code_words,
                                    self.code.n)
        decoded, double = self.code.decode(words)
        raw = words[..., self.code.data_indices]
        self.ecc_words_decoded += self.out_features * self.n_code_words
        self.ecc_words_corrected += int(
            ((decoded != raw).any(axis=-1) & ~double).sum())
        self.ecc_double_errors += int(double.sum())
        return np.ascontiguousarray(
            decoded.reshape(self.out_features, -1)[:, :self.in_features])

    def _fetch_weights(self, rng: np.random.Generator,
                       sense) -> np.ndarray:
        """One noisy fetch-and-decode of the whole store (per scan)."""
        margins = self.array._read_margin()
        offsets = (sense or self.config.sense).offset(rng, margins.shape)
        self.array.amplifiers.sense_count += margins.size
        return self._decode_stored((margins + offsets > 0).astype(np.uint8))

    # -- reads -----------------------------------------------------------
    def popcounts(self, x_bits: np.ndarray,
                  rng: np.random.Generator | None = None,
                  sense=None) -> np.ndarray:
        """XNOR-popcount against the ECC-protected store.

        One weight fetch through the decoder per scan, then a digital
        packed-kernel popcount over the corrected bits — the whole batch
        reuses the single fetched buffer (that is ECC's trade: correction
        power for the in-memory locality the paper's 2T2R design keeps).
        """
        from repro.nn.bitops import pack_bits, packed_xnor_popcount
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        if x_bits.ndim != 2 or x_bits.shape[1] != self.in_features:
            raise ValueError(
                f"input shape {x_bits.shape} != (N, {self.in_features})")
        self.popcount_bit_ops += \
            x_bits.shape[0] * self.out_features * self.in_features
        if self.fast_path:
            from repro.rram.accelerator import MemoryController
            MemoryController._check_sense_override(sense)
            return packed_xnor_popcount(pack_bits(x_bits),
                                        self.weight_words, self.in_features)
        weights = self._fetch_weights(rng or self.rng, sense)
        return packed_xnor_popcount(pack_bits(x_bits), pack_bits(weights),
                                    self.in_features)

    def popcounts_trials(self, x_bits: np.ndarray, rngs,
                         sense=None,
                         trial_chunk: int | None = None) -> np.ndarray:
        """Trial-batched scans: ``(T, N, out_features)`` counts.

        Trial ``t`` performs exactly one weight fetch drawn from
        ``rngs[t]`` alone, so the loop is trivially bit-identical to
        ``[popcounts(x[t], rng=rngs[t]) for t in range(T)]`` for any
        ``trial_chunk`` (accepted for API parity; the per-trial noise
        tensor here is one weight fetch, already minimal).
        """
        from repro.rram.accelerator import (MemoryController,
                                            _validate_trial_input)
        from repro.nn.bitops import pack_bits, packed_xnor_popcount
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        n_trials = len(rngs)
        shared = _validate_trial_input(x_bits, n_trials, self.in_features)
        n = x_bits.shape[0] if shared else x_bits.shape[1]
        self.popcount_bit_ops += \
            n_trials * n * self.out_features * self.in_features
        if self.fast_path:
            MemoryController._check_sense_override(sense)
            if shared:
                counts = packed_xnor_popcount(
                    pack_bits(x_bits), self.weight_words, self.in_features)
                return np.broadcast_to(
                    counts[None], (n_trials,) + counts.shape).copy()
            return np.stack([
                packed_xnor_popcount(pack_bits(x_bits[t]),
                                     self.weight_words, self.in_features)
                for t in range(n_trials)])
        counts = np.empty((n_trials, n, self.out_features), dtype=np.int64)
        for t, rng in enumerate(rngs):
            weights = pack_bits(self._fetch_weights(rng, sense))
            xs = x_bits if shared else x_bits[t]
            counts[t] = packed_xnor_popcount(pack_bits(xs), weights,
                                             self.in_features)
        return counts

    def __repr__(self) -> str:
        return (f"EccMemoryController({self.out_features}x"
                f"{self.in_features} data bits in "
                f"({self.code.n},{self.code.k}) words, "
                f"stored_cols={self.stored_cols}, "
                f"fast_path={self.fast_path})")


def simulate_protected_storage(data: np.ndarray, code: HammingCode,
                               raw_ber: float, rng: np.random.Generator
                               ) -> tuple[np.ndarray, float]:
    """Store words through a noisy medium with ECC protection.

    ``data``: ``(words, k)`` bits.  Each stored bit flips independently
    with probability ``raw_ber`` (binary symmetric channel — the standard
    abstraction of RRAM read errors).  Returns the decoded data and the
    residual data-bit error rate after correction.
    """
    data = np.asarray(data, dtype=np.uint8)
    stored = code.encode(data)
    flips = (rng.random(stored.shape) < raw_ber).astype(np.uint8)
    decoded, _ = code.decode(stored ^ flips)
    residual = float(np.mean(decoded != data))
    return decoded, residual
