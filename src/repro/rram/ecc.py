"""Hamming error-correcting codes — the digital alternative the paper argues
against.

§II-B: conventional designs suppress RRAM bit errors with ECC, but "the
computation of error detection and correction is more complicated than the
one of binarized neural network" and it breaks the in-memory paradigm.  The
paper further reports that 2T2R gives error-rate benefits "similar to the
one of formal single error correction of equivalent redundancy".  To test
that claim quantitatively (benchmark XTRA1), this module implements:

* :class:`HammingCode` — single-error-correcting (SEC) Hamming codes of any
  number of parity bits, with optional shortening and an optional extended
  parity bit (SECDED).  ``HammingCode.secded_72_64()`` is the classic DRAM
  code; ``HammingCode(r=4)`` is the (15, 11) code; a rate-1/2 shortened code
  matches 2T2R's 2x redundancy.
* vectorized :meth:`encode` / :meth:`decode` over batches of data words;
* :func:`simulate_protected_storage` — push words through a binary
  symmetric channel at the measured raw BER and decode, returning the
  residual (post-correction) bit error rate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HammingCode", "simulate_protected_storage"]


class HammingCode:
    """Systematic Hamming SEC / SECDED code.

    Parameters
    ----------
    r:
        Number of Hamming parity bits; the base code is
        ``(2^r - 1, 2^r - 1 - r)``.
    data_bits:
        Shorten the code to carry only this many data bits (``k``); the
        dropped positions are fixed at zero and never transmitted.
    extended:
        Add an overall parity bit, upgrading SEC to SECDED (detects, but
        does not correct, double errors).
    """

    def __init__(self, r: int, data_bits: int | None = None,
                 extended: bool = False):
        if r < 2:
            raise ValueError(f"need at least 2 parity bits, got {r}")
        self.r = r
        n_full = 2 ** r - 1
        k_full = n_full - r
        self.k = k_full if data_bits is None else int(data_bits)
        if not 1 <= self.k <= k_full:
            raise ValueError(
                f"data_bits must be in [1, {k_full}], got {data_bits}")
        self.extended = extended
        # Positions 1..n_full; powers of two are parity positions.
        positions = np.arange(1, n_full + 1)
        is_parity = (positions & (positions - 1)) == 0
        data_positions = positions[~is_parity][:self.k]
        parity_positions = positions[is_parity]
        self.n = self.k + self.r + (1 if extended else 0)
        self._data_positions = data_positions
        self._parity_positions = parity_positions
        # Map used positions to codeword indices 0..n-1 (shortened layout:
        # kept positions in ascending order).
        used = np.sort(np.concatenate([data_positions, parity_positions]))
        self._used_positions = used
        self._pos_to_index = {int(p): i for i, p in enumerate(used)}
        # Parity-check relationships: parity bit i covers positions whose
        # i-th binary digit is 1.
        self._coverage = [(used & (1 << i)) != 0 for i in range(r)]

    @property
    def redundancy(self) -> float:
        """Stored bits per data bit (2T2R has redundancy exactly 2.0)."""
        return self.n / self.k

    @staticmethod
    def secded_72_64() -> "HammingCode":
        """The (72, 64) extended Hamming code of server memories."""
        return HammingCode(r=7, data_bits=64, extended=True)

    @staticmethod
    def rate_half(k: int = 4) -> "HammingCode":
        """A shortened SEC code with redundancy as close to 2x as Hamming
        allows — the 'equivalent redundancy' comparison point for 2T2R.
        ``k=4`` with r=3 gives (7, 4) extended to (8, 4): exactly 2x."""
        return HammingCode(r=3, data_bits=k, extended=True)

    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``(..., k)`` data bits into ``(..., n)`` codewords."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] != self.k:
            raise ValueError(f"expected {self.k} data bits, got "
                             f"{data.shape[-1]}")
        lead = data.shape[:-1]
        hamming_len = self.k + self.r
        code = np.zeros(lead + (hamming_len,), dtype=np.uint8)
        data_idx = [self._pos_to_index[int(p)] for p in self._data_positions]
        code[..., data_idx] = data
        for i, covered in enumerate(self._coverage):
            parity_index = self._pos_to_index[1 << i]
            mask = covered.copy()
            mask[parity_index] = False
            code[..., parity_index] = code[..., mask].sum(axis=-1) % 2
        if self.extended:
            overall = code.sum(axis=-1, keepdims=True) % 2
            code = np.concatenate([code, overall.astype(np.uint8)], axis=-1)
        return code

    def decode(self, code: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decode ``(..., n)`` codewords.

        Returns ``(data, double_error_detected)``: the corrected data bits
        and, for SECDED codes, a boolean flag per word marking detected
        uncorrectable double errors (flags are all-False for plain SEC).
        """
        code = np.asarray(code, dtype=np.uint8)
        if code.shape[-1] != self.n:
            raise ValueError(f"expected {self.n} code bits, got "
                             f"{code.shape[-1]}")
        if self.extended:
            body = code[..., :-1].copy()
            overall = code[..., -1]
        else:
            body = code.copy()
            overall = None
        # Syndrome: for each parity relation, XOR of covered bits.
        syndrome = np.zeros(body.shape[:-1], dtype=np.int64)
        for i, covered in enumerate(self._coverage):
            bit = body[..., covered].sum(axis=-1) % 2
            syndrome += bit.astype(np.int64) << i
        error_position = syndrome          # 1-based position, 0 = no error
        if self.extended:
            parity_ok = (body.sum(axis=-1) + overall) % 2 == 0
            double_error = (error_position != 0) & parity_ok
        else:
            double_error = np.zeros(body.shape[:-1], dtype=bool)
        # Correct single errors (skip where a double error was flagged and
        # where the syndrome points at a shortened/unused position).
        flat_body = body.reshape(-1, body.shape[-1])
        flat_pos = error_position.reshape(-1)
        flat_double = double_error.reshape(-1)
        for w in np.flatnonzero((flat_pos != 0) & ~flat_double):
            index = self._pos_to_index.get(int(flat_pos[w]))
            if index is not None:
                flat_body[w, index] ^= 1
        body = flat_body.reshape(body.shape)
        data_idx = [self._pos_to_index[int(p)] for p in self._data_positions]
        return body[..., data_idx], double_error


def simulate_protected_storage(data: np.ndarray, code: HammingCode,
                               raw_ber: float, rng: np.random.Generator
                               ) -> tuple[np.ndarray, float]:
    """Store words through a noisy medium with ECC protection.

    ``data``: ``(words, k)`` bits.  Each stored bit flips independently
    with probability ``raw_ber`` (binary symmetric channel — the standard
    abstraction of RRAM read errors).  Returns the decoded data and the
    residual data-bit error rate after correction.
    """
    data = np.asarray(data, dtype=np.uint8)
    stored = code.encode(data)
    flips = (rng.random(stored.shape) < raw_ber).astype(np.uint8)
    decoded, _ = code.decode(stored ^ flips)
    residual = float(np.mean(decoded != data))
    return decoded, residual
