"""In-memory execution of binarized 2-D convolutions.

Extends the weight-stationary mapping of :mod:`repro.rram.conv` to two
spatial dimensions, which is what a *fully binarized MobileNet* (the
Table III ImageNet BNN row) needs from the fabric: each output channel's
flattened ``C_in x K_h x K_w`` kernel occupies one word-line group, the
input data controller streams im2col receptive-field bit vectors, and the
per-channel folded batch-norm threshold is shared across all spatial
positions.

Depthwise convolutions — MobileNet's signature layer — get a dedicated
folding: each channel is its own single-row array (fan-in ``K_h * K_w``),
matching how a depthwise layer would actually be laid out (tiny arrays, one
per channel, no cross-channel accumulation).

The same hardware restrictions apply as in 1-D: inputs must already be
binary and padding must be zero (a padded position has no ±1 encoding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.binary import threshold_bits, to_bits, xnor_popcount
from repro.nn.conv import Conv2d
from repro.nn.norm import _BatchNorm
from repro.rram.accelerator import AcceleratorConfig, MemoryController
from repro.tensor.im2col import conv_output_length

__all__ = ["FoldedBinaryConv2d", "fold_conv2d_batchnorm_sign",
           "fold_depthwise2d_batchnorm_sign", "InMemoryConv2dLayer",
           "max_pool_bits_2d"]


def _threshold_channels(dot: np.ndarray, theta: np.ndarray,
                        gamma_sign: np.ndarray, beta_sign: np.ndarray
                        ) -> np.ndarray:
    """Per-channel popcount threshold with batch-norm sign handling."""
    return threshold_bits(dot, theta, gamma_sign, beta_sign)


@dataclass
class FoldedBinaryConv2d:
    """A binary 2-D convolution + batch-norm + sign folded for hardware.

    ``weight_bits``: ``(C_out, C_in * K_h * K_w)``.  ``depthwise`` marks
    the grouped variant, where output channel ``c`` reads only input
    channel ``c`` (fan-in ``K_h * K_w``).
    """

    weight_bits: np.ndarray
    in_channels: int
    kernel_size: tuple[int, int]
    stride: tuple[int, int]
    theta: np.ndarray
    gamma_sign: np.ndarray
    beta_sign: np.ndarray
    depthwise: bool = False

    @property
    def out_channels(self) -> int:
        return self.weight_bits.shape[0]

    @property
    def fan_in(self) -> int:
        kh, kw = self.kernel_size
        return (1 if self.depthwise else self.in_channels) * kh * kw

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        kh, kw = self.kernel_size
        sh, sw = self.stride
        return (conv_output_length(height, kh, sh),
                conv_output_length(width, kw, sw))

    def _patches(self, x_bits: np.ndarray) -> np.ndarray:
        """im2col over bits: ``(N, C, H, W)`` -> ``(N*H_out*W_out, C*Kh*Kw)``
        (or per-channel patches for depthwise)."""
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        if x_bits.ndim != 4 or x_bits.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) bits, got "
                f"{x_bits.shape}")
        n, c, height, width = x_bits.shape
        h_out, w_out = self.output_shape(height, width)
        kh, kw = self.kernel_size
        sh, sw = self.stride
        strides = x_bits.strides
        windows = np.lib.stride_tricks.as_strided(
            x_bits,
            shape=(n, c, h_out, w_out, kh, kw),
            strides=(strides[0], strides[1], strides[2] * sh,
                     strides[3] * sw, strides[2], strides[3]),
            writeable=False)
        if self.depthwise:
            # (N, C, H_out, W_out, Kh*Kw): channels stay separate.
            return windows.reshape(n, c, h_out, w_out, kh * kw)
        return windows.transpose(0, 2, 3, 1, 4, 5).reshape(
            n * h_out * w_out, c * kh * kw)

    def forward_bits(self, x_bits: np.ndarray) -> np.ndarray:
        """Exact integer inference: ``(N, C_in, H, W)`` bits ->
        ``(N, C_out, H_out, W_out)`` bits."""
        n, _, height, width = np.asarray(x_bits).shape
        h_out, w_out = self.output_shape(height, width)
        patches = self._patches(x_bits)
        if self.depthwise:
            # patches: (N, C, H_out, W_out, K); weight_bits: (C, K).
            # XNOR popcount channel-wise: count agreeing positions.
            agree = (patches
                     == self.weight_bits[None, :, None, None, :]).sum(
                axis=-1, dtype=np.int64)
            dot = 2 * agree - self.fan_in                # (N, C, Ho, Wo)
            return _threshold_channels(
                dot, self.theta[None, :, None, None],
                self.gamma_sign[None, :, None, None],
                self.beta_sign[None, :, None, None])
        pc = xnor_popcount(patches, self.weight_bits)
        dot = 2 * pc - self.fan_in
        out = _threshold_channels(dot, self.theta[None, :],
                                  self.gamma_sign[None, :],
                                  self.beta_sign[None, :])
        return out.reshape(n, h_out, w_out, self.out_channels) \
            .transpose(0, 3, 1, 2)


def _bn_fold_pieces(bn: _BatchNorm) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
    theta = bn.effective_threshold()
    gamma_sign = np.sign(bn.gamma.data)
    beta_sign = np.where(np.sign(bn.beta.data) == 0, 1.0,
                         np.sign(bn.beta.data))
    return theta, gamma_sign, beta_sign


def _check_deployable(conv, kind: str) -> None:
    if conv.padding != (0, 0) and conv.padding != 0:
        raise ValueError(
            f"only padding=0 {kind} convolutions map onto the binary "
            f"fabric, got padding={conv.padding}")
    if getattr(conv, "bias", None) is not None:
        raise ValueError("convolution bias is not representable; use "
                         "batch-norm for offsets")


def fold_conv2d_batchnorm_sign(conv, bn: _BatchNorm) -> FoldedBinaryConv2d:
    """Fold ``sign(BN(conv2d_b(x)))`` into a popcount-threshold conv.

    ``conv`` may be a :class:`~repro.nn.BinaryConv2d` or a plain
    :class:`~repro.nn.Conv2d` whose weights are already ±1.
    """
    _check_deployable(conv, "2-D")
    weights = conv.weight.data
    c_out, c_in, kh, kw = weights.shape
    theta, gamma_sign, beta_sign = _bn_fold_pieces(bn)
    return FoldedBinaryConv2d(
        weight_bits=to_bits(weights).reshape(c_out, c_in * kh * kw),
        in_channels=c_in,
        kernel_size=(kh, kw),
        stride=conv.stride if isinstance(conv.stride, tuple)
        else (conv.stride, conv.stride),
        theta=theta,
        gamma_sign=gamma_sign,
        beta_sign=beta_sign,
    )


def fold_depthwise2d_batchnorm_sign(conv, bn: _BatchNorm
                                    ) -> FoldedBinaryConv2d:
    """Fold a binary *depthwise* conv + batch-norm + sign.

    ``conv`` is a :class:`~repro.nn.BinaryDepthwiseConv2d` (weights
    ``(C, K_h, K_w)``); each channel becomes its own tiny array.
    """
    _check_deployable(conv, "depthwise")
    weights = conv.weight.data
    channels, kh, kw = weights.shape
    theta, gamma_sign, beta_sign = _bn_fold_pieces(bn)
    return FoldedBinaryConv2d(
        weight_bits=to_bits(weights).reshape(channels, kh * kw),
        in_channels=channels,
        kernel_size=(kh, kw),
        stride=conv.stride if isinstance(conv.stride, tuple)
        else (conv.stride, conv.stride),
        theta=theta,
        gamma_sign=gamma_sign,
        beta_sign=beta_sign,
        depthwise=True,
    )


class InMemoryConv2dLayer:
    """A folded binary 2-D convolution executed on RRAM tiles.

    Weight-stationary: flattened kernels live in the arrays; receptive
    fields stream through the XNOR sense amplifiers.  Depthwise layers use
    the software popcount path per channel (their single-row arrays make
    tiling trivial and device effects negligible at K_h*K_w fan-in).

    An injected ``controller`` (e.g. a sharded
    :class:`~repro.rram.accelerator.ShardedController`) replaces the
    monolithic array; im2col patch batches flow through its
    ``popcounts``/``popcounts_trials`` unchanged, so a stacked-shard fast
    plan built at controller construction applies to conv scans too.
    """

    def __init__(self, folded: FoldedBinaryConv2d,
                 config: AcceleratorConfig | None = None,
                 rng: np.random.Generator | None = None,
                 fast_path: bool | str = "auto",
                 controller=None):
        self.folded = folded
        self.controller = controller if controller is not None else \
            MemoryController(folded.weight_bits, config, rng, fast_path)

    def forward_bits(self, x_bits: np.ndarray,
                     rng=None, sense=None) -> np.ndarray:
        f = self.folded
        if f.depthwise:
            # Channel-local reads; the controller models the device layer
            # for standard convs, depthwise stays in the folded math.
            return f.forward_bits(x_bits)
        n, _, height, width = np.asarray(x_bits).shape
        h_out, w_out = f.output_shape(height, width)
        patches = f._patches(x_bits)
        pc = self.controller.popcounts(patches, rng=rng, sense=sense)
        dot = 2 * pc - f.fan_in
        out = _threshold_channels(dot, f.theta[None, :],
                                  f.gamma_sign[None, :],
                                  f.beta_sign[None, :])
        return out.reshape(n, h_out, w_out, f.out_channels) \
            .transpose(0, 3, 1, 2)

    def forward_bits_trials(self, x_bits: np.ndarray, rngs,
                            sense=None, trial_chunk=None) -> np.ndarray:
        """Trial-batched conv2d: ``(N, C, H, W)`` or ``(T, N, C, H, W)``
        bits in, ``(T, N, C_out, H_out, W_out)`` out; trial ``t`` reads
        with ``rngs[t]``.  Depthwise layers are deterministic (folded
        math), so their trials coincide."""
        f = self.folded
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        shared = x_bits.ndim == 4
        n_trials = len(rngs)
        if not shared and x_bits.shape[0] != n_trials:
            raise ValueError(
                f"{x_bits.shape[0]} trial slices for {n_trials} streams")
        if f.depthwise:
            if shared:
                out = f.forward_bits(x_bits)
                return np.broadcast_to(
                    out[None], (n_trials,) + out.shape).copy()
            return np.stack([f.forward_bits(x_bits[t])
                             for t in range(n_trials)])
        n, _, height, width = x_bits.shape if shared else x_bits.shape[1:]
        h_out, w_out = f.output_shape(height, width)
        patches = f._patches(x_bits) if shared else np.stack(
            [f._patches(x_bits[t]) for t in range(n_trials)])
        pc = self.controller.popcounts_trials(patches, rngs, sense=sense,
                                              trial_chunk=trial_chunk)
        out = _threshold_channels(2 * pc - f.fan_in, f.theta[None, :],
                                  f.gamma_sign[None, :],
                                  f.beta_sign[None, :])
        return out.reshape(n_trials, n, h_out, w_out, f.out_channels) \
            .transpose(0, 1, 4, 2, 3)


def max_pool_bits_2d(bits: np.ndarray, kernel: int,
                     stride: int | None = None) -> np.ndarray:
    """2-D max-pooling on activation bits (logical OR in the periphery)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) bits, got {bits.shape}")
    stride = stride or kernel
    n, c, height, width = bits.shape
    h_out = (height - kernel) // stride + 1
    w_out = (width - kernel) // stride + 1
    sn, sc, sh, sw = bits.strides
    windows = np.lib.stride_tricks.as_strided(
        bits, shape=(n, c, h_out, w_out, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False)
    return windows.max(axis=(-2, -1))
