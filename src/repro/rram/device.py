"""HfO2 resistive-memory device model.

The paper's test chip integrates hafnium-oxide RRAM in the BEOL of a 130 nm
CMOS process (§II-B, Fig. 2).  The reproduction cannot ship a die, so this
module provides the standard statistical abstraction used by device-aware
simulators: programmed resistances are log-normally distributed around
state-dependent medians, and repeated program/erase cycling both broadens
the distributions and drifts the high-resistance state downward — the two
effects behind the rising bit-error-rate curves of Fig. 4.

Two access paths are provided:

* :class:`RRAMDevice` — a scalar device with explicit ``program``/``read``
  operations and a cycle counter; used by the cell/sense models and unit
  tests.
* vectorized sampling (:meth:`DeviceParameters.sample_resistance`) — used by
  :class:`repro.rram.array.RRAMArray` to program thousands of devices at
  once.
* analytic bit-error rates (:func:`analytic_ber_1t1r`,
  :func:`analytic_ber_2t2r`) — closed-form Gaussian-tail expressions used to
  cross-check the Monte-Carlo harness and overlay Fig. 4.

Calibration targets (see ``EXPERIMENTS.md``): the 1T1R error rate rises from
~1e-4 at 1e8 cycles to ~1e-2 at 7e8 cycles, with the 2T2R curve about two
orders of magnitude lower, matching Fig. 4's measurements.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

__all__ = ["ResistiveState", "DeviceParameters", "RRAMDevice",
           "analytic_ber_1t1r", "analytic_ber_2t2r"]


class ResistiveState(enum.Enum):
    """Programmed state of a filamentary RRAM device."""

    LRS = "low_resistance"    # SET: conductive filament formed
    HRS = "high_resistance"   # RESET: filament dissolved


@dataclass
class DeviceParameters:
    """Statistical device model.

    Resistances are log-normal: ``ln R ~ N(mu_state(c), sigma_state(c))``
    where ``c`` is the number of program cycles the device has seen.

    * ``sigma_*(c) = sigma_*0 * (1 + broadening * log10(max(c, c0) / c0))``
      — cycle-to-cycle variability grows with wear;
    * ``mu_hrs(c) = ln(median_hrs) - hrs_drift * log10(max(c, c0) / c0)``
      — the HRS window closes as the oxide degrades (LRS is stable).

    ``device_mismatch`` scales sigma for the complementary (BLb) device of a
    2T2R pair, modelling device-to-device asymmetry — this is why Fig. 4
    shows two distinct 1T1R curves.
    """

    median_lrs: float = 5e3          # ohms
    median_hrs: float = 1e5          # ohms
    sigma_lrs0: float = 0.40         # ln-units at the reference cycle count
    sigma_hrs0: float = 0.40
    broadening: float = 0.55         # sigma growth per decade of cycling
    hrs_drift: float = 0.00          # ln-units of HRS median loss per decade
    reference_cycles: float = 1e8    # cycle count where sigma = sigma0
    device_mismatch: float = 1.12    # BLb sigma multiplier
    reference_spread: float = 0.18   # 1T1R reference imprecision (ln-units)

    def _decades(self, cycles: float | np.ndarray) -> np.ndarray:
        cycles = np.maximum(np.asarray(cycles, dtype=float),
                            self.reference_cycles)
        return np.log10(cycles / self.reference_cycles)

    def sigma_lrs(self, cycles: float | np.ndarray) -> np.ndarray:
        return self.sigma_lrs0 * (1.0 + self.broadening * self._decades(cycles))

    def sigma_hrs(self, cycles: float | np.ndarray) -> np.ndarray:
        return self.sigma_hrs0 * (1.0 + self.broadening * self._decades(cycles))

    def mu_lrs(self, cycles: float | np.ndarray) -> np.ndarray:
        return np.full_like(self._decades(cycles), math.log(self.median_lrs))

    def mu_hrs(self, cycles: float | np.ndarray) -> np.ndarray:
        return math.log(self.median_hrs) - self.hrs_drift * self._decades(cycles)

    @property
    def reference_resistance(self) -> float:
        """1T1R read reference: geometric mean of the fresh medians."""
        return math.sqrt(self.median_lrs * self.median_hrs)

    def sample_resistance(self, state: np.ndarray, cycles: float | np.ndarray,
                          rng: np.random.Generator,
                          mismatch: float = 1.0) -> np.ndarray:
        """Draw programmed resistances for an array of devices.

        ``state``: boolean array, True = LRS.  ``mismatch`` scales sigma
        (use ``device_mismatch`` for the BLb device of a pair).
        """
        state = np.asarray(state, dtype=bool)
        mu = np.where(state, self.mu_lrs(cycles), self.mu_hrs(cycles))
        sigma = mismatch * np.where(state, self.sigma_lrs(cycles),
                                    self.sigma_hrs(cycles))
        return np.exp(rng.normal(mu, sigma))


class RRAMDevice:
    """A single 1T1R-accessible RRAM device.

    Tracks its cycle count; every ``program`` re-draws the resistance from
    the wear-dependent distribution, reproducing cycle-to-cycle variability.
    """

    def __init__(self, params: DeviceParameters | None = None,
                 rng: np.random.Generator | None = None,
                 mismatch: float = 1.0):
        self.params = params or DeviceParameters()
        self.rng = rng or np.random.default_rng()
        self.mismatch = mismatch
        self.cycles = 0
        self.state: ResistiveState | None = None
        self.resistance = float("nan")

    def form(self) -> None:
        """One-time forming: leaves the device in LRS."""
        self.program(ResistiveState.LRS)

    def program(self, state: ResistiveState) -> None:
        """SET or RESET the device; counts one endurance cycle."""
        self.cycles += 1
        self.state = state
        sample = self.params.sample_resistance(
            np.array(state is ResistiveState.LRS),
            max(self.cycles, 1), self.rng, mismatch=self.mismatch)
        self.resistance = float(sample)

    def wear(self, cycles: int) -> None:
        """Advance the endurance counter without changing the state
        (models the cycling history of a weight that is reprogrammed many
        times during chip qualification)."""
        self.cycles += int(cycles)

    def read(self) -> float:
        """Non-destructive resistance read."""
        if self.state is None:
            raise RuntimeError("device must be formed/programmed before read")
        return self.resistance


def analytic_ber_1t1r(params: DeviceParameters, cycles: float | np.ndarray,
                      mismatch: float = 1.0,
                      sense_offset_sigma: float = 0.15) -> np.ndarray:
    """Closed-form single-device bit error rate.

    A 1T1R read compares the device resistance to the fixed reference; an
    error occurs when the log-normal tail crosses it.  Errors from the HRS
    and LRS sides are averaged (states are equiprobable when storing
    weights).  The decision noise combines device variability, sense
    amplifier offset, and reference imprecision in quadrature.
    """
    ln_ref = math.log(params.reference_resistance)
    extra = sense_offset_sigma ** 2 + params.reference_spread ** 2
    s_hrs = np.sqrt((mismatch * params.sigma_hrs(cycles)) ** 2 + extra)
    s_lrs = np.sqrt((mismatch * params.sigma_lrs(cycles)) ** 2 + extra)
    z_hrs = (params.mu_hrs(cycles) - ln_ref) / s_hrs
    z_lrs = (ln_ref - params.mu_lrs(cycles)) / s_lrs
    return 0.5 * (norm.sf(z_hrs) + norm.sf(z_lrs))


def analytic_ber_2t2r(params: DeviceParameters, cycles: float | np.ndarray,
                      sense_offset_sigma: float = 0.15) -> np.ndarray:
    """Closed-form differential-pair bit error rate.

    A 2T2R read errs only when the HRS device of the pair appears *less*
    resistive than the LRS device (plus precharge-sense-amplifier offset,
    expressed in ln-resistance units).  The decision margin is the full
    LRS-to-HRS window instead of half of it, which is what buys the ~two
    orders of magnitude of Fig. 4.
    """
    mu_gap = params.mu_hrs(cycles) - params.mu_lrs(cycles)
    sigma = np.sqrt(
        params.sigma_hrs(cycles) ** 2
        + (params.device_mismatch * params.sigma_lrs(cycles)) ** 2
        + sense_offset_sigma ** 2)
    return norm.sf(mu_gap / sigma)
