"""Analog-coded crossbar alternative (the ISAAC / PRIME style of §II-A).

The paper contrasts two ways of using emerging memories for neural
networks: *analog* coding, where a weight is the conductance difference of
a device pair and the dot product is a summed current, versus the paper's
*binary* approach.  Analog coding "requires only two devices per weight…
but has the disadvantage of requiring complex peripherals such as
analog-to-digital and digital-to-analog converters with their associated
high area overhead" (§II-A, citing ISAAC [18] and PRIME [19]).

This module implements that alternative so the claim can be measured
rather than cited:

* :class:`AnalogConfig` / :class:`AnalogCrossbar` — differential
  conductance pairs with programming variability, a DAC-quantized input
  stage, summed read currents with noise, and an ADC-quantized output
  stage;
* :class:`AnalogLinear` — one-call deployment of a trained real-weight
  dense layer onto a crossbar;
* :class:`PeripheryModel` — DAC/ADC energy and area as a function of
  resolution, for the overhead comparison against the digital PCSA
  periphery of :class:`repro.rram.energy.EnergyModel`.

The accuracy limiter is architectural, not a tuning artifact: the ADC must
span the worst-case column current (which grows with fan-in), so its LSB —
and therefore the output error — grows with array width unless resolution
is increased.  ``benchmarks/bench_ablation_analog_adc.py`` sweeps this
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.linear import Linear

__all__ = ["AnalogConfig", "AnalogCrossbar", "AnalogLinear",
           "PeripheryModel"]


@dataclass
class AnalogConfig:
    """Crossbar electrical and converter parameters.

    Conductances are in microsiemens; the defaults bracket the HfO2 device
    window of :class:`repro.rram.device.DeviceParameters` (5 kΩ LRS → 200 µS,
    100 kΩ HRS → 10 µS).
    """

    g_on_us: float = 200.0         # fully-SET conductance
    g_off_us: float = 10.0         # fully-RESET conductance
    programming_sigma: float = 0.05  # lognormal sigma of programmed G
    read_noise_sigma: float = 0.01   # relative current noise per read
    dac_bits: int = 8
    adc_bits: int = 8
    v_read: float = 0.2            # read voltage (V)
    adc_headroom: float = 1.0      # fraction of worst-case column current
    #                                the ADC full-scale is designed for

    def validate(self) -> "AnalogConfig":
        if not 0 < self.g_off_us < self.g_on_us:
            raise ValueError(
                f"need 0 < g_off ({self.g_off_us}) < g_on ({self.g_on_us})")
        if self.programming_sigma < 0 or self.read_noise_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        for name in ("dac_bits", "adc_bits"):
            bits = getattr(self, name)
            if not 1 <= bits <= 16:
                raise ValueError(f"{name} must be in [1, 16], got {bits}")
        if self.v_read <= 0:
            raise ValueError("v_read must be positive")
        if not 0 < self.adc_headroom <= 1.0:
            raise ValueError("adc_headroom must be in (0, 1]")
        return self


class AnalogCrossbar:
    """A differential-pair crossbar storing one real weight matrix.

    Weight ``w[i, j]`` maps linearly onto the conductance difference
    ``G+[i, j] - G-[i, j]``: the positive part drives ``G+`` above the OFF
    floor and the negative part drives ``G-``, so each weight needs exactly
    two devices (the §II-A accounting).  Programming draws each conductance
    from a lognormal around its target once, at deployment; reads add
    relative current noise.
    """

    def __init__(self, weights: np.ndarray, cfg: AnalogConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.cfg = (cfg or AnalogConfig()).validate()
        rng = rng or np.random.default_rng()
        self.rng = rng
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        self.out_features, self.in_features = weights.shape

        peak = np.abs(weights).max()
        # Weight value represented by the full conductance window.
        self.w_fullscale = float(peak) if peak > 0 else 1.0
        g_range = self.cfg.g_on_us - self.cfg.g_off_us
        normalized = weights / self.w_fullscale
        target_pos = self.cfg.g_off_us + g_range * np.maximum(normalized, 0.0)
        target_neg = self.cfg.g_off_us + g_range * np.maximum(-normalized, 0.0)
        self.g_pos = self._program(target_pos)
        self.g_neg = self._program(target_neg)

    def _program(self, target_us: np.ndarray) -> np.ndarray:
        """One-shot programming with lognormal conductance variability."""
        if self.cfg.programming_sigma == 0:
            return target_us.copy()
        noise = self.rng.normal(0.0, self.cfg.programming_sigma,
                                size=target_us.shape)
        programmed = target_us * np.exp(noise)
        return np.clip(programmed, 0.5 * self.cfg.g_off_us,
                       2.0 * self.cfg.g_on_us)

    # ------------------------------------------------------------------
    # Converter stages
    # ------------------------------------------------------------------
    def _dac(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        """Quantize inputs onto the DAC grid; returns (voltages, x_scale).

        ``x_scale`` is the input value represented by the full read voltage.
        """
        levels = 2 ** (self.cfg.dac_bits - 1) - 1 if self.cfg.dac_bits > 1 \
            else 1
        peak = np.abs(x).max()
        x_scale = float(peak) if peak > 0 else 1.0
        codes = np.clip(np.round(x / x_scale * levels), -levels, levels)
        return codes / levels * self.cfg.v_read, x_scale

    def _column_fullscale_ua(self) -> float:
        """Worst-case differential column current the ADC must span (µA)."""
        g_range = self.cfg.g_on_us - self.cfg.g_off_us
        worst = self.in_features * g_range * self.cfg.v_read
        return worst * self.cfg.adc_headroom

    def _adc(self, current_ua: np.ndarray) -> np.ndarray:
        """Quantize column currents; returns currents on the ADC grid."""
        levels = 2 ** (self.cfg.adc_bits - 1) - 1 if self.cfg.adc_bits > 1 \
            else 1
        fullscale = self._column_fullscale_ua()
        codes = np.clip(np.round(current_ua / fullscale * levels),
                        -levels, levels)
        return codes / levels * fullscale

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Estimate ``W @ x`` rows for a batch: ``(N, in) -> (N, out)``.

        Pipeline: DAC → differential current summation (+ read noise) →
        ADC → digital rescale back to weight units.
        """
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"input width {x.shape[-1]} != crossbar width "
                f"{self.in_features}")
        voltages, x_scale = self._dac(x)
        g_diff = self.g_pos - self.g_neg          # µS
        currents = voltages @ g_diff.T            # µA
        if self.cfg.read_noise_sigma > 0:
            rms = np.sqrt(np.mean(currents ** 2)) or 1.0
            currents = currents + self.rng.normal(
                0.0, self.cfg.read_noise_sigma * rms, size=currents.shape)
        quantized = self._adc(currents)
        # Invert the physical scaling: current = v_read/x_scale *
        # g_range/w_fullscale * (W @ x).
        g_range = self.cfg.g_on_us - self.cfg.g_off_us
        gain = (self.cfg.v_read / x_scale) * (g_range / self.w_fullscale)
        out = quantized / gain
        return out[0] if squeeze else out

    def relative_error(self, weights: np.ndarray, x: np.ndarray) -> float:
        """RMS error of :meth:`matvec` against ``x @ W.T``, relative to the
        RMS of the true output."""
        true = np.asarray(x, dtype=float) @ np.asarray(weights, dtype=float).T
        est = self.matvec(x)
        denom = np.sqrt(np.mean(true ** 2))
        if denom == 0:
            return float(np.sqrt(np.mean(est ** 2)))
        return float(np.sqrt(np.mean((est - true) ** 2)) / denom)


class AnalogLinear:
    """A trained dense layer deployed on an analog crossbar."""

    def __init__(self, layer: Linear, cfg: AnalogConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.crossbar = AnalogCrossbar(layer.weight.data, cfg, rng)
        self.bias = (layer.bias.data.copy()
                     if getattr(layer, "bias", None) is not None else None)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.crossbar.matvec(x)
        if self.bias is not None:
            out = out + self.bias
        return out


@dataclass
class PeripheryModel:
    """DAC/ADC energy and area versus resolution.

    Converter cost grows exponentially with resolution: energy per
    conversion follows the Walden figure of merit ``E = FoM * 2^bits`` and
    flash/SAR area scales with the comparator/capacitor count, also
    ``∝ 2^bits``.  Defaults are 130 nm-class (FoM ~1 pJ/step era); they set
    the scale, while the digital-vs-analog *ratio* the bench reports is
    driven by the exponent.
    """

    adc_fom_fj_per_step: float = 1000.0   # fJ per conversion-step
    adc_area_um2_per_step: float = 60.0   # µm² per level
    dac_fom_fj_per_step: float = 150.0
    dac_area_um2_per_step: float = 12.0

    def adc_energy_pj(self, bits: int) -> float:
        """Energy of one ADC conversion (pJ)."""
        return self.adc_fom_fj_per_step * (2 ** bits) / 1000.0

    def adc_area_um2(self, bits: int) -> float:
        return self.adc_area_um2_per_step * (2 ** bits)

    def dac_energy_pj(self, bits: int) -> float:
        return self.dac_fom_fj_per_step * (2 ** bits) / 1000.0

    def dac_area_um2(self, bits: int) -> float:
        return self.dac_area_um2_per_step * (2 ** bits)

    def matvec_energy_pj(self, rows: int, cols: int, dac_bits: int,
                         adc_bits: int, adcs_shared: int = 1) -> float:
        """Converter energy for one crossbar matrix-vector product.

        One DAC conversion per input row; one ADC conversion per output
        column (time-multiplexing ``adcs_shared`` columns onto one ADC does
        not change the energy, only the area).
        """
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        return (rows * self.dac_energy_pj(dac_bits)
                + cols * self.adc_energy_pj(adc_bits))

    def matvec_area_um2(self, rows: int, cols: int, dac_bits: int,
                        adc_bits: int, adcs_shared: int = 1) -> float:
        """Converter area for a crossbar tile.

        ``adcs_shared``: number of columns served by one time-multiplexed
        ADC (ISAAC-style sharing trades throughput for area).
        """
        if adcs_shared < 1:
            raise ValueError("adcs_shared must be >= 1")
        n_adc = -(-cols // adcs_shared)  # ceil division
        return (rows * self.dac_area_um2(dac_bits)
                + n_adc * self.adc_area_um2(adc_bits))
