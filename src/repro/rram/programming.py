"""Program-and-verify weight programming.

The paper programs weights once, before inference, through the memory
controller (§II-B).  Its companion studies (refs. [15], [16]) use stronger
programming conditions to trade programming energy against bit errors.  The
standard industrial technique for that trade-off is **program-and-verify**:
after each SET/RESET pulse the cell is read back, and devices whose
resistance missed the target window are pulsed again, up to a retry budget.

This module implements that loop on top of the statistical device model:
every retry is a fresh draw from the wear-dependent distribution (and one
more endurance cycle), so verification tightens the *effective* programmed
distribution at the cost of extra cycles/energy — exactly the mechanism the
ablation benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rram.array import RRAMArray
from repro.rram.device import DeviceParameters

__all__ = ["ProgramVerifyConfig", "VerifyStatistics", "program_row_verified",
           "program_array_verified"]


@dataclass
class ProgramVerifyConfig:
    """Verify windows and retry budget.

    A programmed LRS passes if its resistance is below
    ``lrs_max_factor * median_lrs``; an HRS passes above
    ``hrs_min_factor * median_hrs``.  Tighter factors cut bit errors but
    burn more programming cycles.
    """

    lrs_max_factor: float = 2.0
    hrs_min_factor: float = 0.5
    max_attempts: int = 8

    def windows(self, params: DeviceParameters) -> tuple[float, float]:
        return (self.lrs_max_factor * params.median_lrs,
                self.hrs_min_factor * params.median_hrs)


@dataclass
class VerifyStatistics:
    """Outcome of a verified programming pass."""

    total_devices: int
    total_pulses: int
    failed_devices: int          # still outside the window after retries

    @property
    def mean_pulses(self) -> float:
        return self.total_pulses / max(self.total_devices, 1)


def _verify_pass(resistances: np.ndarray, is_lrs: np.ndarray,
                 lrs_max: float, hrs_min: float) -> np.ndarray:
    """Boolean mask of devices inside their target window."""
    lrs_ok = resistances <= lrs_max
    hrs_ok = resistances >= hrs_min
    return np.where(is_lrs, lrs_ok, hrs_ok)


def _program_until_verified(params: DeviceParameters, is_lrs: np.ndarray,
                            cycles: np.ndarray, rng: np.random.Generator,
                            config: ProgramVerifyConfig,
                            mismatch: float = 1.0
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized verify loop.

    Returns ``(resistances, pulses_used, still_failing)``; ``cycles`` is
    updated in place with the extra pulses.
    """
    lrs_max, hrs_min = config.windows(params)
    resistances = params.sample_resistance(is_lrs, cycles, rng,
                                           mismatch=mismatch)
    pulses = np.ones(is_lrs.shape, dtype=np.int64)
    for _ in range(config.max_attempts - 1):
        ok = _verify_pass(resistances, is_lrs, lrs_max, hrs_min)
        retry = ~ok
        if not retry.any():
            break
        cycles[retry] += 1
        pulses[retry] += 1
        redraw = params.sample_resistance(
            is_lrs[retry], cycles[retry], rng, mismatch=mismatch)
        resistances = resistances.copy()
        resistances[retry] = redraw
    failing = ~_verify_pass(resistances, is_lrs, lrs_max, hrs_min)
    return resistances, pulses, failing


def program_row_verified(array: RRAMArray, row: int, bits: np.ndarray,
                         config: ProgramVerifyConfig | None = None
                         ) -> VerifyStatistics:
    """Program one word line with program-and-verify.

    Replaces the plain ``program_row``: each device is pulsed until its
    resistance verifies or the retry budget runs out.  Endurance counters
    advance once per pulse, so verification genuinely wears the devices.
    """
    config = config or ProgramVerifyConfig()
    row = array._decode_row(row)
    bits = np.asarray(bits, dtype=np.uint8).reshape(-1)
    cols = np.arange(array.n_cols)
    if bits.size != array.n_cols:
        raise ValueError(f"{bits.size} bits for {array.n_cols} columns")
    array.weight_bits[row] = bits
    array._programmed[row] = True
    array.cycles[row] += 1
    total_pulses = 0
    failed = 0

    # BL devices: LRS iff bit == 1.
    r_bl, pulses, failing = _program_until_verified(
        array.params, bits == 1, array.cycles[row], array.rng, config)
    array.r_bl[row] = r_bl
    total_pulses += int(pulses.sum())
    failed += int(failing.sum())
    n_devices = array.n_cols

    if array.mode == "2T2R":
        r_blb, pulses_b, failing_b = _program_until_verified(
            array.params, bits == 0, array.cycles[row], array.rng, config,
            mismatch=array.params.device_mismatch)
        array.r_blb[row] = r_blb
        total_pulses += int(pulses_b.sum())
        failed += int(failing_b.sum())
        n_devices += array.n_cols

    array.program_ops += int(total_pulses)
    return VerifyStatistics(total_devices=n_devices,
                            total_pulses=total_pulses,
                            failed_devices=failed)


def program_array_verified(array: RRAMArray, bits: np.ndarray,
                           config: ProgramVerifyConfig | None = None
                           ) -> VerifyStatistics:
    """Program a whole array with program-and-verify; aggregates stats."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.shape != (array.n_rows, array.n_cols):
        raise ValueError(f"bits shape {bits.shape} != array "
                         f"{array.n_rows}x{array.n_cols}")
    total = VerifyStatistics(0, 0, 0)
    for row in range(array.n_rows):
        stats = program_row_verified(array, row, bits[row], config)
        total = VerifyStatistics(
            total.total_devices + stats.total_devices,
            total.total_pulses + stats.total_pulses,
            total.failed_devices + stats.failed_devices)
    return total
