"""Energy and area accounting for the in-memory BNN versus digital baselines.

The paper's architectural argument (§I, §II-B) is quantitative but its
numbers live in the companion references [15], [16]; this module provides a
transparent calculator with representative 130 nm-class constants so the
*relative* claims can be checked:

1. in-memory 2T2R BNN inference avoids weight movement entirely — its
   energy is dominated by sense + popcount;
2. a conventional digital implementation must fetch weights from SRAM (or
   worse, DRAM) and, if it relies on ECC instead of 2T2R, pay syndrome
   computation on every read;
3. ECC decode logic is *more* complex than the BNN arithmetic itself, which
   is the paper's reason to reject it.

All constants are exposed as dataclass fields so studies can re-run the
accounting under their own technology assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "InferenceCost"]


@dataclass
class InferenceCost:
    """Energy/area breakdown for one classifier inference."""

    sense_energy_pj: float
    popcount_energy_pj: float
    data_movement_pj: float
    ecc_energy_pj: float
    total_pj: float
    area_mm2: float

    def row(self) -> tuple[str, ...]:
        return (f"{self.sense_energy_pj:.2f}", f"{self.popcount_energy_pj:.2f}",
                f"{self.data_movement_pj:.2f}", f"{self.ecc_energy_pj:.2f}",
                f"{self.total_pj:.2f}", f"{self.area_mm2:.4f}")


@dataclass
class EnergyModel:
    """Representative per-operation costs (130 nm-class technology).

    Energies in femtojoules unless noted; areas in square micrometres.
    Sources are typical published ranges for HfO2 RRAM macros and low-power
    digital logic in mature nodes; they set the *scale*, while the
    comparisons we report depend on op *counts*, which are exact.
    """

    pcsa_sense_fj: float = 7.0            # differential sense, per bit
    xnor_pcsa_sense_fj: float = 8.0       # sense with XNOR stage, per bit
    popcount_fj_per_bit: float = 2.0      # adder-tree energy per popcount bit
    threshold_fj: float = 20.0            # per-neuron comparator
    sram_read_fj_per_bit: float = 50.0    # on-chip SRAM weight fetch
    dram_read_pj_per_bit: float = 20.0    # off-chip weight fetch (pJ!)
    xnor_gate_fj: float = 0.5             # digital XNOR, per bit
    ecc_decode_fj_per_bit: float = 30.0   # SECDED syndrome+correct, per data bit
    rram_program_pj: float = 1.5          # per device write (pJ)

    cell_area_1t1r_um2: float = 0.35      # 1T1R bit cell
    cell_area_2t2r_um2: float = 0.70      # two devices + two transistors
    pcsa_area_um2: float = 15.0           # per column sense amplifier
    popcount_area_um2_per_bit: float = 4.0
    ecc_decoder_area_um2: float = 3500.0  # SECDED(72,64) decoder block

    # ------------------------------------------------------------------
    def in_memory_inference(self, layer_shapes: list[tuple[int, int]],
                            tile_cols: int = 32) -> InferenceCost:
        """Cost of one inference of a binary classifier on the Fig. 5
        architecture.

        ``layer_shapes``: (out_features, in_features) per binary dense
        layer.  Weights never move: every input bit is sensed (with XNOR)
        once per output neuron, popcounted, and thresholded.
        """
        sense = popcount = threshold = 0.0
        area = 0.0
        for out_f, in_f in layer_shapes:
            ops = out_f * in_f
            sense += ops * self.xnor_pcsa_sense_fj
            popcount += ops * self.popcount_fj_per_bit
            threshold += out_f * self.threshold_fj
            area += ops * self.cell_area_2t2r_um2 \
                + tile_cols * self.pcsa_area_um2 \
                + tile_cols * self.popcount_area_um2_per_bit
        total = sense + popcount + threshold
        return InferenceCost(
            sense_energy_pj=sense / 1e3,
            popcount_energy_pj=(popcount + threshold) / 1e3,
            data_movement_pj=0.0,
            ecc_energy_pj=0.0,
            total_pj=total / 1e3,
            area_mm2=area / 1e6,
        )

    def digital_inference(self, layer_shapes: list[tuple[int, int]],
                          weight_memory: str = "sram",
                          use_ecc: bool = True,
                          ecc_overhead: float = 72.0 / 64.0) -> InferenceCost:
        """Cost of the same classifier on a conventional digital datapath.

        Weights stream from ``weight_memory`` ('sram' or 'dram') on every
        inference; with ``use_ecc`` each fetched word pays SECDED decode.
        Compute itself is cheap digital XNOR + popcount.
        """
        movement = ecc = compute = 0.0
        area = self.ecc_decoder_area_um2 if use_ecc else 0.0
        for out_f, in_f in layer_shapes:
            bits = out_f * in_f
            fetched = bits * (ecc_overhead if use_ecc else 1.0)
            if weight_memory == "sram":
                movement += fetched * self.sram_read_fj_per_bit
                area += fetched * self.cell_area_1t1r_um2  # SRAM >= this
            elif weight_memory == "dram":
                movement += fetched * self.dram_read_pj_per_bit * 1e3
            else:
                raise ValueError(f"unknown memory {weight_memory!r}")
            if use_ecc:
                ecc += bits * self.ecc_decode_fj_per_bit
            compute += bits * (self.xnor_gate_fj + self.popcount_fj_per_bit)
            compute += out_f * self.threshold_fj
        total = movement + ecc + compute
        return InferenceCost(
            sense_energy_pj=0.0,
            popcount_energy_pj=compute / 1e3,
            data_movement_pj=movement / 1e3,
            ecc_energy_pj=ecc / 1e3,
            total_pj=total / 1e3,
            area_mm2=area / 1e6,
        )

    def programming_energy_pj(self, n_weight_bits: int) -> float:
        """One-time cost of programming a weight matrix into 2T2R (two
        devices per bit).  Amortized over the chip's deployment life."""
        return 2 * n_weight_bits * self.rram_program_pj

    def storage_area_comparison(self, n_weight_bits: int
                                ) -> dict[str, float]:
        """Storage-only area (mm^2) of 2T2R vs ECC-protected 1T1R."""
        ecc_bits = n_weight_bits * 72.0 / 64.0
        return {
            "2t2r_mm2": n_weight_bits * self.cell_area_2t2r_um2 / 1e6,
            "1t1r_secded_mm2": (ecc_bits * self.cell_area_1t1r_um2
                                + self.ecc_decoder_area_um2) / 1e6,
            "1t1r_rate_half_mm2": (2 * n_weight_bits
                                   * self.cell_area_1t1r_um2
                                   + self.ecc_decoder_area_um2) / 1e6,
        }
