"""Stuck-at fault maps for programmed RRAM state.

Real RRAM macros ship with hard defects the read-noise model cannot
express: forming failures leave cells stuck in LRS or HRS regardless of
what is programmed, opens in a word-line driver kill a whole row, and
infant-mortality or assembly faults kill entire macro chips.  A
:class:`FaultMap` describes such a defect population statistically —
per-cell stuck-at rates, a per-row kill rate, and an explicit list of
dead macros — and materializes it deterministically per physical
location.

Fault draws ride the keyed split-stable stream contract of
:func:`repro.rram.mc.site_stream`: the map's own ``seed`` plus a caller
``key`` (layer index, shard index) fully determine every mask, so fault
placement is invariant to chunking, worker count and call order — and it
never consumes a controller's program or read streams, which keeps the
*empty* map bit-identical to no map at all.

Semantics are defined at the *cell* (synapse) level, matching the 2T2R
pair as one unit: a stuck-at-LRS cell always senses 1, a stuck-at-HRS
cell always senses 0, and a dead row senses 0 on every cell.  On the
physical read path these become extreme resistance overrides (margins of
tens of ln-units that no realistic sense offset or retention drift can
flip); on the deterministic fast path they are applied directly to the
effective weight bits before packing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rram.mc import site_stream

__all__ = ["FaultMap"]

#: Keyed stream namespace for fault draws, so a fault site can never
#: collide with the order-based spawn tree of the same seed.
_FAULT_SITE = 0x5AFE


@dataclass(frozen=True)
class FaultMap:
    """A statistical defect population plus an explicit dead-macro list.

    ``stuck_lrs`` / ``stuck_hrs`` are independent per-cell probabilities
    (their sum must stay <= 1); ``dead_rows`` is a per-word-line kill
    probability; ``dead_macros`` names macro indices (in a sharded
    layer's row-major shard order) that are entirely non-functional —
    the :class:`~repro.rram.accelerator.ShardedController` remaps those
    onto spare macros.  ``seed`` keys every statistical draw.
    """

    stuck_lrs: float = 0.0
    stuck_hrs: float = 0.0
    dead_rows: float = 0.0
    dead_macros: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self):
        for name in ("stuck_lrs", "stuck_hrs", "dead_rows"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        if self.stuck_lrs + self.stuck_hrs > 1.0:
            raise ValueError(
                f"stuck_lrs + stuck_hrs must be <= 1, got "
                f"{self.stuck_lrs + self.stuck_hrs}")
        dead = tuple(sorted({int(m) for m in self.dead_macros}))
        if dead and dead[0] < 0:
            raise ValueError(f"dead macro indices must be >= 0, got {dead}")
        object.__setattr__(self, "dead_macros", dead)

    @property
    def empty(self) -> bool:
        """True when the map injects nothing anywhere."""
        return not (self.has_cell_faults or self.dead_macros)

    @property
    def has_cell_faults(self) -> bool:
        """True when per-cell or per-row faults can occur (the statistical
        part; dead macros are handled structurally by remapping)."""
        return self.stuck_lrs > 0 or self.stuck_hrs > 0 \
            or self.dead_rows > 0

    def cell_masks(self, shape: tuple[int, int],
                   key: tuple[int, ...] = ()) -> tuple[np.ndarray,
                                                       np.ndarray]:
        """Materialize ``(stuck_one, stuck_zero)`` boolean masks.

        ``shape`` is the logical ``(rows, cols)`` cell grid; ``key``
        identifies the physical location (e.g. ``(layer, shard)``) so
        distinct chips draw independent faults while the same chip
        always draws the same ones.  One uniform field decides the
        per-cell state (disjoint by construction); a second per-row
        draw overlays dead rows, which sense 0 everywhere.
        """
        rows, cols = (int(shape[0]), int(shape[1]))
        rng = site_stream(self.seed, _FAULT_SITE, *key)
        u = rng.random((rows, cols))
        stuck_one = u < self.stuck_lrs
        stuck_zero = (u >= self.stuck_lrs) \
            & (u < self.stuck_lrs + self.stuck_hrs)
        if self.dead_rows > 0:
            dead = rng.random(rows) < self.dead_rows
            stuck_zero |= dead[:, None]
            stuck_one &= ~dead[:, None]
        return stuck_one, stuck_zero

    def apply_bits(self, bits: np.ndarray,
                   key: tuple[int, ...] = ()) -> np.ndarray:
        """Effective stored bits after stuck-at faults (fast-path view).

        Deterministic reads sense exactly the stuck values, so the fault
        model reduces to overriding the programmed bits; returns a copy
        (the input is never mutated) or the input itself when the map
        has no cell faults.
        """
        if not self.has_cell_faults:
            return bits
        stuck_one, stuck_zero = self.cell_masks(bits.shape, key)
        bits = np.array(bits, dtype=np.uint8, copy=True)
        bits[stuck_one] = 1
        bits[stuck_zero] = 0
        return bits

    def dead_local(self, n_macros: int, base: int = 0) -> tuple[int, ...]:
        """Dead macro indices falling inside ``[base, base + n_macros)``,
        rebased to local shard indices — how a multi-layer backend
        assigns its global dead list to per-layer shard maps."""
        return tuple(m - base for m in self.dead_macros
                     if base <= m < base + int(n_macros))

    def rebased(self, n_macros: int, base: int = 0) -> "FaultMap":
        """A copy whose ``dead_macros`` are the local indices of
        :meth:`dead_local` — the per-layer view of a global map."""
        from dataclasses import replace
        return replace(self, dead_macros=self.dead_local(n_macros, base))
