"""Plain-text plotting for the benchmark harnesses.

The repository regenerates every figure of the paper, but matplotlib is not
available offline — so the benches render figures as ASCII plots instead.
:func:`line_plot` draws multi-series curves with optional log axes (Fig. 4's
log-BER curves, Fig. 7's accuracy-vs-augmentation, Fig. 8's training
curves); :func:`histogram` shows distributions (device resistance spreads);
:func:`sparkline` gives one-line summaries for compact tables.
"""

from repro.viz.plot import histogram, line_plot, sparkline

__all__ = ["line_plot", "histogram", "sparkline"]
