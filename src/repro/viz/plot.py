"""ASCII rendering of line plots, histograms and sparklines."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["line_plot", "histogram", "sparkline"]

_MARKERS = "*+ox#@%&"
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _finite_pairs(xs, ys) -> tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(xs, dtype=float).ravel()
    ys = np.asarray(ys, dtype=float).ravel()
    if xs.shape != ys.shape:
        raise ValueError(f"series length mismatch: {xs.size} xs vs "
                         f"{ys.size} ys")
    keep = np.isfinite(xs) & np.isfinite(ys)
    return xs[keep], ys[keep]


def _axis_transform(values: np.ndarray, log: bool, name: str) -> np.ndarray:
    if not log:
        return values
    if np.any(values <= 0):
        raise ValueError(f"log {name}-axis requires positive values")
    return np.log10(values)


def _span(lo: float, hi: float) -> tuple[float, float]:
    """Pad a degenerate range so mapping to columns never divides by 0."""
    if hi > lo:
        return lo, hi
    pad = abs(lo) * 0.5 + 1.0
    return lo - pad, hi + pad


def _format_tick(value: float, log: bool) -> str:
    if log:
        return f"{10 ** value:.3g}"
    return f"{value:.4g}"


def line_plot(series: dict[str, tuple[Sequence, Sequence]],
              title: str = "", width: int = 64, height: int = 18,
              x_log: bool = False, y_log: bool = False,
              x_label: str = "", y_label: str = "") -> str:
    """Render multi-series (x, y) data on a character grid.

    ``series`` maps a legend label to an ``(xs, ys)`` pair.  Each series
    gets its own marker; overlapping points show the later series.  NaN and
    infinite points are dropped per series.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("plot must be at least 16x4 characters")

    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, (xs, ys) in series.items():
        xs, ys = _finite_pairs(xs, ys)
        if xs.size == 0:
            continue
        cleaned[label] = (_axis_transform(xs, x_log, "x"),
                          _axis_transform(ys, y_log, "y"))
    if not cleaned:
        raise ValueError("no finite data points in any series")

    all_x = np.concatenate([xs for xs, _ in cleaned.values()])
    all_y = np.concatenate([ys for _, ys in cleaned.values()])
    x_lo, x_hi = _span(float(all_x.min()), float(all_x.max()))
    y_lo, y_hi = _span(float(all_y.min()), float(all_y.max()))

    grid = [[" "] * width for _ in range(height)]
    for index, (label, (xs, ys)) in enumerate(cleaned.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        cols = np.clip(((xs - x_lo) / (x_hi - x_lo) * (width - 1)).round()
                       .astype(int), 0, width - 1)
        rows = np.clip(((ys - y_lo) / (y_hi - y_lo) * (height - 1)).round()
                       .astype(int), 0, height - 1)
        order = np.argsort(cols)
        # Connect consecutive points with interpolated markers so sparse
        # series read as curves.
        for a, b in zip(order[:-1], order[1:]):
            c0, r0, c1, r1 = cols[a], rows[a], cols[b], rows[b]
            steps = max(abs(int(c1) - int(c0)), abs(int(r1) - int(r0)), 1)
            for t in range(steps + 1):
                c = round(c0 + (c1 - c0) * t / steps)
                r = round(r0 + (r1 - r0) * t / steps)
                grid[height - 1 - r][c] = marker
        if len(order) == 1:
            grid[height - 1 - rows[order[0]]][cols[order[0]]] = marker

    left_labels = [_format_tick(y_hi, y_log), _format_tick(y_lo, y_log)]
    margin = max(len(s) for s in left_labels) + 1

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = left_labels[0].rjust(margin)
        elif i == height - 1:
            prefix = left_labels[1].rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    x_ticks = (_format_tick(x_lo, x_log), _format_tick(x_hi, x_log))
    gap = max(1, width - len(x_ticks[0]) - len(x_ticks[1]))
    lines.append(" " * (margin + 1) + x_ticks[0] + " " * gap + x_ticks[1])
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {label}"
                        for i, label in enumerate(cleaned))
    lines.append(" " * (margin + 1) + legend)
    if y_label:
        lines.insert(len(lines) - 2 - bool(x_label),
                     " " * (margin + 1) + f"[y: {y_label}]")
    return "\n".join(lines)


def histogram(values: Sequence, bins: int = 20, width: int = 50,
              title: str = "", log_counts: bool = False) -> str:
    """Horizontal-bar histogram of a 1-D sample."""
    values = np.asarray(values, dtype=float).ravel()
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("no finite values to histogram")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    counts, edges = np.histogram(values, bins=bins)
    display = np.log10(counts + 1) if log_counts else counts.astype(float)
    peak = display.max() if display.max() > 0 else 1.0
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for count, disp, lo, hi in zip(counts, display, edges[:-1], edges[1:]):
        bar = "#" * int(round(disp / peak * width))
        lines.append(f"{lo:>10.4g} .. {hi:>10.4g} |{bar} {count}")
    return "\n".join(lines)


def sparkline(values: Sequence) -> str:
    """One-line block-character trend, e.g. for per-epoch accuracy."""
    values = np.asarray(values, dtype=float).ravel()
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise ValueError("no finite values")
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    chars = []
    for v in values:
        if not math.isfinite(v):
            chars.append("?")
            continue
        level = int(round((v - lo) / span * (len(_BLOCKS) - 2)))
        chars.append(_BLOCKS[1 + level])
    return "".join(chars)
