"""repro — In-Memory Resistive RAM Implementation of Binarized Neural
Networks for Medical Applications (Penkovsky et al., DATE 2020).

A complete offline reproduction of the paper's system:

* :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — a
  from-scratch deep-learning stack (reverse-mode autodiff over numpy) with
  real and binarized layers, the straight-through estimator, and the
  XNOR-popcount arithmetic of Eq. (3);
* :mod:`repro.data` — synthetic EEG motor-imagery, 12-lead ECG
  electrode-inversion, and image datasets standing in for the paper's
  corpora (see DESIGN.md for the substitution arguments);
* :mod:`repro.models` — the paper's three architectures (Tables I, II;
  MobileNet V1) with REAL / FULL_BINARY / BINARY_CLASSIFIER modes;
* :mod:`repro.rram` — the hardware substrate: HfO2 device statistics,
  1T1R/2T2R cells, precharge sense amplifiers with the in-SA XNOR, kilobit
  arrays, the Fig. 5 in-memory BNN accelerator, endurance/BER experiments,
  Hamming ECC, and energy/area accounting;
* :mod:`repro.analysis` — memory-footprint accounting (Table IV) and the
  8-bit quantization reference;
* :mod:`repro.experiments` — cross-validated training harness and
  benchmark scales;
* :mod:`repro.runtime` — the compile-once inference runtime: one
  ``compile(model, backend=...)`` step targeting interchangeable
  reference / packed-CPU / RRAM substrates.

Quick start::

    from repro.models import ECGNet, BinarizationMode
    from repro.data import make_ecg_dataset
    from repro.rram import deploy_classifier, classifier_input_bits

See ``examples/quickstart.py`` for an end-to-end train-and-deploy run.
"""

__version__ = "1.0.0"

from repro import analysis, data, experiments, models, nn, optim, rram, tensor
from repro import io, metrics, runtime, viz

__all__ = ["analysis", "data", "experiments", "io", "metrics", "models",
           "nn", "optim", "rram", "runtime", "tensor", "viz", "__version__"]
