"""Shared artifact machinery: versioned, pickle-free ``.npz`` files.

Every repro artifact is a compressed numpy archive holding named arrays
plus one JSON metadata record under ``__repro_meta__``.  No pickle is
ever used, so artifacts are safe to load from untrusted sources and
remain readable by any numpy.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

__all__ = ["npz_path", "write_npz", "read_npz"]

_META_KEY = "__repro_meta__"


def npz_path(path) -> pathlib.Path:
    """The path numpy will actually write (``.npz`` appended if absent)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = pathlib.Path(str(path) + ".npz")
    return path


def write_npz(path, arrays: dict[str, np.ndarray], meta: dict,
              overwrite: bool = False) -> pathlib.Path:
    """Write an artifact, refusing to clobber unless ``overwrite=True``.

    Deployment artifacts are hand-offs between phases (lab -> factory);
    silently replacing one is almost always an operator mistake, so the
    existence check is on by default for every ``save_*`` entry point.
    """
    path = npz_path(path)
    if path.exists() and not overwrite:
        raise FileExistsError(
            f"{path} already exists; pass overwrite=True to replace it")
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)
    return path


def read_npz(path) -> tuple[dict[str, np.ndarray], dict]:
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
        if _META_KEY not in data.files:
            raise ValueError(
                f"{path} is not a repro artefact (missing metadata record)")
        meta = json.loads(bytes(data[_META_KEY]).decode("utf-8"))
    return arrays, meta
