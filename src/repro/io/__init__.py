"""Model and deployment persistence.

The paper's deployment flow is two-phase: weights are trained off-chip,
then "programming occurs before the use of the inference circuit and is
managed by a memory controller" (§II-B).  That hand-off needs artefact
formats.  This package provides three, all plain numpy ``.npz`` (no
pickle, safe to load from untrusted sources):

* :func:`save_model` / :func:`load_model` — training checkpoints: the
  full ``state_dict`` with a metadata record so stale or mismatched
  checkpoints fail loudly;
* :func:`save_plan` / :func:`load_plan` / :func:`load_compiled` — the
  **deployment artifact**: a whole compiled plan (packed weight words,
  integer thresholds, op kinds, geometry metadata and periphery specs).
  Loading needs no live model and rebinds to any registered backend —
  ``load_compiled(path, backend="sharded")`` programs simulated chips
  from the file;
* :func:`save_bundle` / :func:`load_bundle` / :func:`load_compiled_bundle`
  — the **multi-tenant bundle**: N named plans in one file, the unit a
  multi-model chip (and the serving daemon) deploys; single-plan files
  load transparently as one-tenant bundles and vice versa;
* :func:`save_folded_classifier` / :func:`load_folded_classifier` — the
  legacy classifier-only programming artefact, superseded by plan
  artifacts; :func:`convert_folded_artifact` (and ``load_plan`` itself)
  upgrade old files.

Every ``save_*`` refuses to overwrite an existing file unless
``overwrite=True``.
"""

from repro.io.checkpoints import load_model, save_model
from repro.io.folded import (convert_folded_artifact, load_folded_classifier,
                             save_folded_classifier)
from repro.io.plans import (BundleArtifact, PlanArtifact, load_bundle,
                            load_compiled, load_compiled_bundle, load_plan,
                            save_bundle, save_plan)

__all__ = ["save_model", "load_model", "save_folded_classifier",
           "load_folded_classifier", "convert_folded_artifact",
           "PlanArtifact", "save_plan", "load_plan", "load_compiled",
           "BundleArtifact", "save_bundle", "load_bundle",
           "load_compiled_bundle"]
