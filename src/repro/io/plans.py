"""Compiled-plan deployment artifacts: the paper's end state as a file.

A trained BNN ends its life on the RRAM chip as weight words plus integer
thresholds (§II-B: "programming occurs before the use of the inference
circuit").  ``runtime.compile`` produces exactly that; this module makes
it a *file*:

* :func:`save_plan` writes a versioned ``.npz`` holding every
  :class:`~repro.runtime.ir.PlanOp`'s payload — packed weight words,
  integer thresholds, op kind and geometry metadata (fan-in, kernel and
  stride, pad/depthwise hints) plus the declarative periphery specs;
* :func:`load_plan` reads it back (transparently converting legacy
  folded-classifier artifacts) without touching the training stack;
* :func:`load_compiled` rebinds the artifact to **any** registered
  backend (``reference`` / ``packed`` / ``rram`` / ``sharded`` / plug-
  ins) through ``resolve_backend`` + ``begin_plan`` + ``prepare_*`` —
  one artifact serves CPU verification and simulated-chip execution.

Because both the compiler and the loader build periphery ops from the
same specs (:mod:`repro.runtime.serialize`), a reloaded plan is
bit-identical to a freshly compiled one — the property the golden
artifact tests under ``tests/fixtures/plans/`` pin down.

Several plans can share one file: :func:`save_bundle` /
:func:`load_bundle` extend the format with a **bundle artifact** — N
named plans (tenants) under one version header, the deployment unit of
the multi-tenant chip (every tenant's packed words programmed onto one
macro pool, see :mod:`repro.rram.floorplan`).  Single-plan files load
transparently as one-tenant bundles, and a one-tenant bundle loads
transparently as a plan, so every consumer takes either kind.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro import __version__
from repro.io.common import read_npz, write_npz

__all__ = ["PlanArtifact", "BundleArtifact", "save_plan", "load_plan",
           "load_compiled", "save_bundle", "load_bundle",
           "load_compiled_bundle"]


@dataclass
class PlanArtifact:
    """An in-memory deployment artifact: plan payload, no executors."""

    format_version: int
    repro_version: str
    ops: list[dict]                       # one meta entry per plan op
    arrays: dict[str, np.ndarray] = field(repr=False)
    meta: dict = field(repr=False)

    @property
    def self_contained(self) -> bool:
        """True when every op rebuilds from the artifact alone (no
        ``external`` front-end closing over the original model)."""
        return all(entry["op"] != "external" for entry in self.ops)

    @property
    def input_shape(self) -> tuple[int, ...] | None:
        """Per-sample input geometry recorded at save time (if known)."""
        shape = self.meta.get("input_shape")
        return tuple(int(s) for s in shape) if shape else None

    @property
    def layer_shapes(self) -> list[tuple[int, int]]:
        """Weight-matrix shapes of the substrate ops, in plan order."""
        return [tuple(entry["weight_shape"])
                for entry in self.ops if entry["role"] in ("layer",
                                                           "output")]

    def describe(self) -> str:
        """Human-readable artifact listing (one line per op)."""
        header = (f"plan artifact v{self.format_version} "
                  f"(saved with repro {self.repro_version}, "
                  f"{'self-contained' if self.self_contained else 'needs a front_end'})")
        lines = [header, "-" * len(header)]
        for entry in self.ops:
            geometry = ""
            if "weight_shape" in entry:
                rows, cols = entry["weight_shape"]
                geometry = (f"  [{rows}x{cols} words, "
                            f"fan-in {entry['params']['fan_in']}]")
            lines.append(f"{entry['index']:2d}. {entry['role']:<10} "
                         f"{entry['label']}{geometry}")
        return "\n".join(lines)


def save_plan(plan, path, *, overwrite: bool = False,
              allow_external_front_end: bool = False) -> pathlib.Path:
    """Write a compiled plan as a versioned deployment artifact.

    The artifact is backend-independent: it stores the folded forms and
    periphery specs, never the prepared executors, so loading rebinds it
    to any registered backend.  Plans whose front-end is the float
    feature stack of the model (non-lowered compiles, custom closures)
    are only partially serializable; pass
    ``allow_external_front_end=True`` to save them anyway — reloading
    then requires a ``front_end=`` callable.

    Refuses to replace an existing file unless ``overwrite=True``.
    """
    from repro.runtime.serialize import FORMAT_VERSION

    model_meta, arrays = _model_payload(
        plan, allow_external_front_end=allow_external_front_end)
    meta = {
        "kind": "compiled_plan",
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        **model_meta,
    }
    return write_npz(path, arrays, meta, overwrite=overwrite)


def _model_payload(plan, *, allow_external_front_end: bool = False):
    """Serialize one compiled plan: ``(model_meta, arrays)``.

    The shared core of :func:`save_plan` and :func:`save_bundle` —
    ``model_meta`` is everything but the envelope (kind / versions),
    ``arrays`` the flat ``op{i}.{name}`` payload.
    """
    from repro.runtime.serialize import (PlanSerializationError,
                                         plan_payload)

    ops_meta, arrays = plan_payload(plan)
    external = [entry["label"] for entry in ops_meta
                if entry["op"] == "external"]
    if external and not allow_external_front_end:
        raise PlanSerializationError(
            f"plan front-end {external[0]!r} closes over the model and "
            "cannot be rebuilt from the artifact alone; compile with "
            "lower_features=True (fully binarized models) for a "
            "self-contained artifact, or pass "
            "allow_external_front_end=True and supply front_end= at "
            "load time")
    for entry in ops_meta:
        if entry["role"] in ("layer", "output"):
            entry["weight_shape"] = list(
                arrays[f"op{entry['index']}.weight_bits"].shape)
    front_params = ops_meta[0]["params"] if ops_meta else {}
    return {
        "backend": plan.backend.name,
        "self_contained": not external,
        "input_shape": front_params.get("input_shape"),
        "n_ops": len(ops_meta),
        "ops": ops_meta,
    }, arrays


def load_plan(path, *, model: str | None = None) -> PlanArtifact:
    """Read a plan artifact (or convert a legacy folded classifier).

    Validates the format version — artifacts written by a newer repro
    fail loudly instead of mis-deserializing.  Legacy
    ``folded_classifier`` files are upgraded in memory (an activation-bit
    passthrough front-end plus the dense stack); use
    :func:`repro.io.convert_folded_artifact` to persist the upgrade.

    Bundle files load transparently: ``model=`` picks the tenant, and a
    one-tenant bundle needs no name at all.  For single-plan files
    ``model`` is ignored (so callers can pass it unconditionally).
    """
    from repro.runtime.serialize import FORMAT_VERSION, plan_payload

    arrays, meta = read_npz(path)
    if meta.get("kind") == "plan_bundle":
        return _bundle_from_payload(arrays, meta, path).plan(model)
    if meta.get("kind") == "folded_classifier":
        from repro.io.folded import folded_from_arrays
        from repro.runtime import plan_from_folded

        hidden, output = folded_from_arrays(arrays, meta)
        plan = plan_from_folded(hidden, output, backend="reference")
        ops_meta, plan_arrays = plan_payload(plan)
        for entry in ops_meta:
            if entry["role"] in ("layer", "output"):
                entry["weight_shape"] = list(
                    plan_arrays[f"op{entry['index']}.weight_bits"].shape)
        return PlanArtifact(
            format_version=FORMAT_VERSION,
            repro_version=meta.get("repro_version", "unknown"),
            ops=ops_meta, arrays=plan_arrays,
            meta={"kind": "compiled_plan", "converted_from":
                  "folded_classifier",
                  "input_shape": [int(output.in_features)
                                  if not hidden
                                  else int(hidden[0].in_features)],
                  **{k: meta[k] for k in ("layer_shapes",) if k in meta}})
    if meta.get("kind") != "compiled_plan":
        raise ValueError(
            f"{path} holds a {meta.get('kind')!r} artefact, not a "
            "compiled plan")
    version = meta.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"{path} has a malformed format_version "
                         f"({version!r})")
    if version > FORMAT_VERSION:
        raise ValueError(
            f"{path} was saved as plan-artifact format v{version}; this "
            f"repro build reads up to v{FORMAT_VERSION} — upgrade repro "
            "to load it")
    return PlanArtifact(format_version=version,
                        repro_version=meta.get("repro_version", "unknown"),
                        ops=meta["ops"], arrays=arrays, meta=meta)


def load_compiled(path, backend="reference", *, front_end=None,
                  model: str | None = None):
    """Rebuild an executable :class:`~repro.runtime.CompiledModel` from a
    saved artifact, bound to ``backend`` — no live model required.

    ``backend`` accepts a registered name or a configured
    :class:`~repro.runtime.Backend` instance (e.g.
    ``ShardedRRAMBackend(macro=MacroGeometry(7, 13))``).  ``front_end``
    supplies the input closure for artifacts whose front-end is
    ``external``; self-contained artifacts ignore it.  ``model`` selects
    a tenant when ``path`` is a bundle (ignored for single plans).

    ``path`` may also be an already-loaded :class:`PlanArtifact` or
    :class:`BundleArtifact`, so the file is parsed once when rebinding
    to several backends.
    """
    from repro.runtime import CompiledModel, resolve_backend
    from repro.runtime.serialize import ops_from_payload

    if isinstance(path, BundleArtifact):
        artifact = path.plan(model)
    elif isinstance(path, PlanArtifact):
        artifact = path
    else:
        artifact = load_plan(path, model=model)
    backend = resolve_backend(backend)
    backend.begin_plan()
    ops = ops_from_payload(artifact.ops, artifact.arrays, backend,
                           front_end=front_end)
    return CompiledModel(ops, backend)


# --------------------------------------------------------------------------
# Bundle artifacts: N named plans under one version header.
# --------------------------------------------------------------------------

@dataclass
class BundleArtifact:
    """An in-memory multi-tenant deployment artifact: named plans that
    are meant to be resident on one chip together."""

    format_version: int
    repro_version: str
    models: dict[str, PlanArtifact] = field(repr=False)
    meta: dict = field(repr=False)

    @property
    def names(self) -> tuple[str, ...]:
        """Tenant names, in bundle (save) order."""
        return tuple(self.models)

    def __len__(self) -> int:
        return len(self.models)

    def __contains__(self, name: str) -> bool:
        return name in self.models

    def __getitem__(self, name: str) -> PlanArtifact:
        return self.plan(name)

    def plan(self, model: str | None = None) -> PlanArtifact:
        """One tenant's plan; ``model=None`` is allowed only for a
        one-tenant bundle (the single-plan compatibility path)."""
        if model is None:
            if len(self.models) == 1:
                return next(iter(self.models.values()))
            raise ValueError(
                f"bundle holds {len(self.models)} models "
                f"({', '.join(self.names)}); pass model= to pick one")
        try:
            return self.models[model]
        except KeyError:
            raise ValueError(
                f"bundle has no model {model!r} "
                f"(has: {', '.join(self.names)})") from None

    def describe(self) -> str:
        """Human-readable bundle listing (tenants, then per-tenant ops)."""
        header = (f"plan bundle v{self.format_version} "
                  f"(saved with repro {self.repro_version}, "
                  f"{len(self.models)} models)")
        lines = [header, "=" * len(header)]
        for name, artifact in self.models.items():
            lines.append(f"[{name}]")
            lines.append(artifact.describe())
        return "\n".join(lines)


def _bundle_names(plans) -> list[str]:
    """Validate tenant names: non-empty printable strings, unique."""
    names = list(plans)
    if not names:
        raise ValueError("a bundle needs at least one model")
    for name in names:
        if not isinstance(name, str) or not name or not name.isprintable():
            raise ValueError(f"bad model name {name!r}: bundle models "
                             "need non-empty printable string names")
    return names


def save_bundle(plans, path, *, overwrite: bool = False,
                allow_external_front_end: bool = False) -> pathlib.Path:
    """Write several named plans as one versioned bundle artifact.

    ``plans`` maps tenant name to a compiled plan *or* an
    already-loaded :class:`PlanArtifact` (so existing single-plan files
    can be re-bundled without recompiling).  Per-tenant payloads keep
    the exact single-plan serialization under a ``model{i}.`` array
    namespace — a tenant extracted from a bundle is byte-identical to
    the same plan saved alone.
    """
    from repro.runtime.serialize import FORMAT_VERSION

    names = _bundle_names(plans)
    model_metas, arrays = [], {}
    for index, name in enumerate(names):
        plan = plans[name]
        if isinstance(plan, PlanArtifact):
            model_meta = {key: plan.meta[key] for key in
                          ("backend", "self_contained", "input_shape",
                           "n_ops") if key in plan.meta}
            model_meta["ops"] = plan.ops
            model_arrays = plan.arrays
        else:
            model_meta, model_arrays = _model_payload(
                plan, allow_external_front_end=allow_external_front_end)
        model_metas.append({"name": name, **model_meta})
        for key, value in model_arrays.items():
            arrays[f"model{index}.{key}"] = value
    meta = {
        "kind": "plan_bundle",
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "n_models": len(names),
        "names": names,
        "models": model_metas,
    }
    return write_npz(path, arrays, meta, overwrite=overwrite)


def _bundle_from_payload(arrays, meta, path) -> BundleArtifact:
    """Demux a bundle npz payload into per-tenant :class:`PlanArtifact`s."""
    from repro.runtime.serialize import FORMAT_VERSION

    version = meta.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"{path} has a malformed format_version "
                         f"({version!r})")
    if version > FORMAT_VERSION:
        raise ValueError(
            f"{path} was saved as plan-artifact format v{version}; this "
            f"repro build reads up to v{FORMAT_VERSION} — upgrade repro "
            "to load it")
    repro_version = meta.get("repro_version", "unknown")
    models: dict[str, PlanArtifact] = {}
    for index, model_meta in enumerate(meta["models"]):
        name = model_meta["name"]
        if name in models:
            raise ValueError(f"{path} names model {name!r} twice")
        prefix = f"model{index}."
        model_arrays = {key[len(prefix):]: value
                        for key, value in arrays.items()
                        if key.startswith(prefix)}
        models[name] = PlanArtifact(
            format_version=version, repro_version=repro_version,
            ops=model_meta["ops"], arrays=model_arrays,
            meta={"kind": "compiled_plan", "format_version": version,
                  "repro_version": repro_version,
                  **{k: v for k, v in model_meta.items() if k != "name"}})
    return BundleArtifact(format_version=version,
                          repro_version=repro_version,
                          models=models, meta=meta)


def load_bundle(path) -> BundleArtifact:
    """Read a bundle artifact; single-plan files (and legacy folded
    classifiers) load transparently as a one-tenant bundle named after
    the file stem.

    ``path`` may also be an already-loaded :class:`BundleArtifact` or
    :class:`PlanArtifact`.
    """
    from repro.runtime.serialize import FORMAT_VERSION

    if isinstance(path, BundleArtifact):
        return path
    if isinstance(path, PlanArtifact):
        return BundleArtifact(
            format_version=path.format_version,
            repro_version=path.repro_version,
            models={"default": path},
            meta={"kind": "plan_bundle", "wrapped_single_plan": True})
    arrays, meta = read_npz(path)
    if meta.get("kind") == "plan_bundle":
        return _bundle_from_payload(arrays, meta, path)
    # Single-plan (or legacy) file: one-tenant bundle, named by stem.
    artifact = load_plan(path)
    name = pathlib.Path(str(path)).stem or "default"
    return BundleArtifact(
        format_version=artifact.format_version,
        repro_version=artifact.repro_version,
        models={name: artifact},
        meta={"kind": "plan_bundle", "wrapped_single_plan": True})


def load_compiled_bundle(path, backend="reference", *, front_end=None):
    """Rebuild every tenant of a bundle: ``{name: CompiledModel}``.

    Each tenant binds to its **own** backend instance — a registered
    name resolves freshly per tenant, and a zero-argument factory
    (e.g. ``lambda: ShardedRRAMBackend(macro=...)``) is called per
    tenant — so per-plan backend state such as floorplan placements
    stays per-tenant (``begin_plan`` resets it between compiles).
    Co-resident placement across tenants is a floorplan-level step;
    see :class:`repro.rram.ChipPlacer`.  Passing one already-built
    :class:`~repro.runtime.Backend` instance shares it across tenants,
    which is only sound for stateless backends.
    """
    from repro.runtime import Backend, resolve_backend

    bundle = load_bundle(path)
    compiled = {}
    for name, artifact in bundle.models.items():
        if callable(backend) and not isinstance(backend, Backend):
            tenant_backend = backend()
        else:
            tenant_backend = resolve_backend(backend)
        compiled[name] = load_compiled(artifact, backend=tenant_backend,
                                       front_end=front_end)
    return compiled
