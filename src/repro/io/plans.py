"""Compiled-plan deployment artifacts: the paper's end state as a file.

A trained BNN ends its life on the RRAM chip as weight words plus integer
thresholds (§II-B: "programming occurs before the use of the inference
circuit").  ``runtime.compile`` produces exactly that; this module makes
it a *file*:

* :func:`save_plan` writes a versioned ``.npz`` holding every
  :class:`~repro.runtime.ir.PlanOp`'s payload — packed weight words,
  integer thresholds, op kind and geometry metadata (fan-in, kernel and
  stride, pad/depthwise hints) plus the declarative periphery specs;
* :func:`load_plan` reads it back (transparently converting legacy
  folded-classifier artifacts) without touching the training stack;
* :func:`load_compiled` rebinds the artifact to **any** registered
  backend (``reference`` / ``packed`` / ``rram`` / ``sharded`` / plug-
  ins) through ``resolve_backend`` + ``begin_plan`` + ``prepare_*`` —
  one artifact serves CPU verification and simulated-chip execution.

Because both the compiler and the loader build periphery ops from the
same specs (:mod:`repro.runtime.serialize`), a reloaded plan is
bit-identical to a freshly compiled one — the property the golden
artifact tests under ``tests/fixtures/plans/`` pin down.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro import __version__
from repro.io.common import read_npz, write_npz

__all__ = ["PlanArtifact", "save_plan", "load_plan", "load_compiled"]


@dataclass
class PlanArtifact:
    """An in-memory deployment artifact: plan payload, no executors."""

    format_version: int
    repro_version: str
    ops: list[dict]                       # one meta entry per plan op
    arrays: dict[str, np.ndarray] = field(repr=False)
    meta: dict = field(repr=False)

    @property
    def self_contained(self) -> bool:
        """True when every op rebuilds from the artifact alone (no
        ``external`` front-end closing over the original model)."""
        return all(entry["op"] != "external" for entry in self.ops)

    @property
    def input_shape(self) -> tuple[int, ...] | None:
        """Per-sample input geometry recorded at save time (if known)."""
        shape = self.meta.get("input_shape")
        return tuple(int(s) for s in shape) if shape else None

    @property
    def layer_shapes(self) -> list[tuple[int, int]]:
        """Weight-matrix shapes of the substrate ops, in plan order."""
        return [tuple(entry["weight_shape"])
                for entry in self.ops if entry["role"] in ("layer",
                                                           "output")]

    def describe(self) -> str:
        """Human-readable artifact listing (one line per op)."""
        header = (f"plan artifact v{self.format_version} "
                  f"(saved with repro {self.repro_version}, "
                  f"{'self-contained' if self.self_contained else 'needs a front_end'})")
        lines = [header, "-" * len(header)]
        for entry in self.ops:
            geometry = ""
            if "weight_shape" in entry:
                rows, cols = entry["weight_shape"]
                geometry = (f"  [{rows}x{cols} words, "
                            f"fan-in {entry['params']['fan_in']}]")
            lines.append(f"{entry['index']:2d}. {entry['role']:<10} "
                         f"{entry['label']}{geometry}")
        return "\n".join(lines)


def save_plan(plan, path, *, overwrite: bool = False,
              allow_external_front_end: bool = False) -> pathlib.Path:
    """Write a compiled plan as a versioned deployment artifact.

    The artifact is backend-independent: it stores the folded forms and
    periphery specs, never the prepared executors, so loading rebinds it
    to any registered backend.  Plans whose front-end is the float
    feature stack of the model (non-lowered compiles, custom closures)
    are only partially serializable; pass
    ``allow_external_front_end=True`` to save them anyway — reloading
    then requires a ``front_end=`` callable.

    Refuses to replace an existing file unless ``overwrite=True``.
    """
    from repro.runtime.serialize import (FORMAT_VERSION,
                                         PlanSerializationError,
                                         plan_payload)

    ops_meta, arrays = plan_payload(plan)
    external = [entry["label"] for entry in ops_meta
                if entry["op"] == "external"]
    if external and not allow_external_front_end:
        raise PlanSerializationError(
            f"plan front-end {external[0]!r} closes over the model and "
            "cannot be rebuilt from the artifact alone; compile with "
            "lower_features=True (fully binarized models) for a "
            "self-contained artifact, or pass "
            "allow_external_front_end=True and supply front_end= at "
            "load time")
    for entry in ops_meta:
        if entry["role"] in ("layer", "output"):
            entry["weight_shape"] = list(
                arrays[f"op{entry['index']}.weight_bits"].shape)
    front_params = ops_meta[0]["params"] if ops_meta else {}
    meta = {
        "kind": "compiled_plan",
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "backend": plan.backend.name,
        "self_contained": not external,
        "input_shape": front_params.get("input_shape"),
        "n_ops": len(ops_meta),
        "ops": ops_meta,
    }
    return write_npz(path, arrays, meta, overwrite=overwrite)


def load_plan(path) -> PlanArtifact:
    """Read a plan artifact (or convert a legacy folded classifier).

    Validates the format version — artifacts written by a newer repro
    fail loudly instead of mis-deserializing.  Legacy
    ``folded_classifier`` files are upgraded in memory (an activation-bit
    passthrough front-end plus the dense stack); use
    :func:`repro.io.convert_folded_artifact` to persist the upgrade.
    """
    from repro.runtime.serialize import FORMAT_VERSION, plan_payload

    arrays, meta = read_npz(path)
    if meta.get("kind") == "folded_classifier":
        from repro.io.folded import folded_from_arrays
        from repro.runtime import plan_from_folded

        hidden, output = folded_from_arrays(arrays, meta)
        plan = plan_from_folded(hidden, output, backend="reference")
        ops_meta, plan_arrays = plan_payload(plan)
        for entry in ops_meta:
            if entry["role"] in ("layer", "output"):
                entry["weight_shape"] = list(
                    plan_arrays[f"op{entry['index']}.weight_bits"].shape)
        return PlanArtifact(
            format_version=FORMAT_VERSION,
            repro_version=meta.get("repro_version", "unknown"),
            ops=ops_meta, arrays=plan_arrays,
            meta={"kind": "compiled_plan", "converted_from":
                  "folded_classifier",
                  "input_shape": [int(output.in_features)
                                  if not hidden
                                  else int(hidden[0].in_features)],
                  **{k: meta[k] for k in ("layer_shapes",) if k in meta}})
    if meta.get("kind") != "compiled_plan":
        raise ValueError(
            f"{path} holds a {meta.get('kind')!r} artefact, not a "
            "compiled plan")
    version = meta.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"{path} has a malformed format_version "
                         f"({version!r})")
    if version > FORMAT_VERSION:
        raise ValueError(
            f"{path} was saved as plan-artifact format v{version}; this "
            f"repro build reads up to v{FORMAT_VERSION} — upgrade repro "
            "to load it")
    return PlanArtifact(format_version=version,
                        repro_version=meta.get("repro_version", "unknown"),
                        ops=meta["ops"], arrays=arrays, meta=meta)


def load_compiled(path, backend="reference", *, front_end=None):
    """Rebuild an executable :class:`~repro.runtime.CompiledModel` from a
    saved artifact, bound to ``backend`` — no live model required.

    ``backend`` accepts a registered name or a configured
    :class:`~repro.runtime.Backend` instance (e.g.
    ``ShardedRRAMBackend(macro=MacroGeometry(7, 13))``).  ``front_end``
    supplies the input closure for artifacts whose front-end is
    ``external``; self-contained artifacts ignore it.

    ``path`` may also be an already-loaded :class:`PlanArtifact`, so the
    file is parsed once when rebinding to several backends.
    """
    from repro.runtime import CompiledModel, resolve_backend
    from repro.runtime.serialize import ops_from_payload

    artifact = path if isinstance(path, PlanArtifact) else load_plan(path)
    backend = resolve_backend(backend)
    backend.begin_plan()
    ops = ops_from_payload(artifact.ops, artifact.arrays, backend,
                           front_end=front_end)
    return CompiledModel(ops, backend)
