"""Legacy folded-classifier artifacts and their one-time conversion.

``save_folded_classifier`` / ``load_folded_classifier`` persist the
pre-runtime hardware artefact: folded weight bits and integer thresholds
for the dense classifier only.  The compiled-plan format
(:mod:`repro.io.plans`) supersedes it — a plan artifact additionally
carries the lowered convolution stages and the digital periphery, and
rebinds to any registered backend.  The legacy format stays readable:
:func:`repro.io.load_plan` converts it transparently, and
:func:`convert_folded_artifact` writes the upgraded file (mirroring the
sweep store's one-time JSON -> JSONL migration).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro import __version__
from repro.io.common import read_npz, write_npz
from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense

__all__ = ["save_folded_classifier", "load_folded_classifier",
           "convert_folded_artifact"]


def save_folded_classifier(hidden: list[FoldedBinaryDense],
                           output: FoldedOutputDense, path, *,
                           overwrite: bool = False) -> None:
    """Write the legacy hardware programming artefact for a classifier.

    Stores each hidden layer's weight bits and thresholds plus the output
    layer's bits/scale/offset — the complete content a memory controller
    needs (what :func:`repro.rram.fold_classifier` produces).  New code
    should prefer :func:`repro.io.save_plan`, which persists whole
    compiled plans; this writer is kept for the installed base of
    programming scripts.
    """
    arrays: dict[str, np.ndarray] = {}
    for index, layer in enumerate(hidden):
        prefix = f"hidden{index}."
        arrays[prefix + "weight_bits"] = layer.weight_bits
        arrays[prefix + "theta"] = layer.theta
        arrays[prefix + "gamma_sign"] = layer.gamma_sign
        arrays[prefix + "beta_sign"] = layer.beta_sign
    arrays["output.weight_bits"] = output.weight_bits
    arrays["output.scale"] = output.scale
    arrays["output.offset"] = output.offset
    meta = {
        "kind": "folded_classifier",
        "repro_version": __version__,
        "n_hidden": len(hidden),
        "layer_shapes": [list(l.weight_bits.shape) for l in hidden]
        + [list(output.weight_bits.shape)],
    }
    write_npz(path, arrays, meta, overwrite=overwrite)


def folded_from_arrays(arrays: dict, meta: dict) -> tuple[
        list[FoldedBinaryDense], FoldedOutputDense]:
    """Rebuild the folded layers from a legacy artifact's raw content."""
    hidden = []
    for index in range(meta["n_hidden"]):
        prefix = f"hidden{index}."
        hidden.append(FoldedBinaryDense(
            weight_bits=arrays[prefix + "weight_bits"],
            theta=arrays[prefix + "theta"],
            gamma_sign=arrays[prefix + "gamma_sign"],
            beta_sign=arrays[prefix + "beta_sign"]))
    output = FoldedOutputDense(
        weight_bits=arrays["output.weight_bits"],
        scale=arrays["output.scale"],
        offset=arrays["output.offset"])
    return hidden, output


def load_folded_classifier(path) -> tuple[list[FoldedBinaryDense],
                                          FoldedOutputDense]:
    """Reconstruct the folded layers from a legacy programming artefact."""
    arrays, meta = read_npz(path)
    if meta.get("kind") != "folded_classifier":
        raise ValueError(
            f"{path} holds a {meta.get('kind')!r} artefact, not a folded "
            "classifier")
    return folded_from_arrays(arrays, meta)


def convert_folded_artifact(src, dst=None, *,
                            overwrite: bool = False) -> pathlib.Path:
    """Upgrade a legacy folded-classifier file to a plan artifact.

    ``dst`` defaults to the source name with a ``.plan.npz`` suffix.  The
    resulting artifact has an activation-bit passthrough front-end, so it
    loads on every backend via :func:`repro.io.load_compiled` and is fed
    the same ``(N, in_features)`` bits the legacy consumers used.
    """
    from repro.io.plans import save_plan
    from repro.runtime import plan_from_folded

    hidden, output = load_folded_classifier(src)
    if dst is None:
        src = pathlib.Path(src)
        dst = src.with_name(src.name.removesuffix(".npz") + ".plan.npz")
    plan = plan_from_folded(hidden, output, backend="reference")
    return save_plan(plan, dst, overwrite=overwrite)
