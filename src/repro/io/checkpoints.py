"""Training checkpoints: the full ``state_dict`` of a model.

The state keys are the ``named_parameters`` / ``named_buffers`` paths, so
a checkpoint is portable across processes but tied to the model
architecture (loading validates class name and shapes).
"""

from __future__ import annotations

from repro import __version__
from repro.io.common import read_npz, write_npz
from repro.nn.module import Module

__all__ = ["save_model", "load_model"]


def save_model(model: Module, path, *, overwrite: bool = False) -> None:
    """Write a training checkpoint: every parameter and buffer.

    Refuses to replace an existing file unless ``overwrite=True``.
    """
    meta = {
        "kind": "model",
        "repro_version": __version__,
        "model_class": type(model).__name__,
        "num_parameters": model.num_parameters(),
    }
    write_npz(path, model.state_dict(), meta, overwrite=overwrite)


def load_model(model: Module, path) -> Module:
    """Restore a checkpoint into an already-constructed model.

    The model must be the same architecture (class and tensor shapes) the
    checkpoint was saved from; mismatches raise instead of silently
    mis-assigning weights.
    """
    arrays, meta = read_npz(path)
    if meta.get("kind") != "model":
        raise ValueError(
            f"{path} holds a {meta.get('kind')!r} artefact, not a model "
            "checkpoint")
    if meta["model_class"] != type(model).__name__:
        raise ValueError(
            f"checkpoint was saved from {meta['model_class']}, cannot load "
            f"into {type(model).__name__}")
    model.load_state_dict(arrays)
    return model
