"""Finite-difference gradient verification.

Every differentiable operation and layer in this repository is checked
against central finite differences.  The training results of the benchmark
harnesses are only trustworthy if the gradients are right, so the test-suite
leans on this module heavily.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input.

    ``fn`` must return a scalar :class:`Tensor`.  The perturbed input is
    restored afterwards.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = fn(*inputs).item()
        flat[i] = original - eps
        f_minus = fn(*inputs).item()
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    eps: float = 1e-6, rtol: float = 1e-4,
                    atol: float = 1e-6) -> None:
    """Assert analytic gradients of scalar ``fn(*inputs)`` match numerics.

    Raises ``AssertionError`` with a diagnostic message on mismatch.  Inputs
    that do not require grad are skipped.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        assert analytic is not None, f"input {i} received no gradient"
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
