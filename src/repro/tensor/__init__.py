"""Reverse-mode automatic differentiation engine over numpy arrays.

This package is the computational substrate of the reproduction: the paper
trained its networks with a standard deep-learning framework, which is not
available offline, so we provide an equivalent engine.  The public surface
mirrors the small subset of framework features the paper's experiments need:

* :class:`~repro.tensor.tensor.Tensor` — an n-dimensional array with a
  ``backward()`` method computing gradients of a scalar loss with respect to
  every tensor created with ``requires_grad=True``.
* :mod:`~repro.tensor.im2col` — image/signal-to-column lowering used by the
  convolution layers.
* :func:`~repro.tensor.gradcheck.check_gradients` — finite-difference
  verification utility used heavily by the test-suite.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.im2col import (
    im2col_1d,
    col2im_1d,
    im2col_2d,
    col2im_2d,
    conv_output_length,
)
from repro.tensor.gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "im2col_1d",
    "col2im_1d",
    "im2col_2d",
    "col2im_2d",
    "conv_output_length",
    "check_gradients",
    "numerical_gradient",
]
