"""A reverse-mode autodiff :class:`Tensor` built on numpy.

The design follows the classic tape-less "define-by-run" scheme: every
operation returns a new :class:`Tensor` holding a closure that knows how to
push gradients back to its parents.  Calling :meth:`Tensor.backward` on a
scalar performs a depth-first topological sort of the graph and runs the
closures in reverse order.

Only the operations required by the reproduction are implemented, but each is
implemented completely (full broadcasting support, correct gradient
accumulation for shared sub-expressions, etc.) and verified against
finite-difference gradients in ``tests/tensor``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Grad mode is PER-THREAD state: compiled plans run their front-ends
# under no_grad() and may be evaluated from several threads at once (the
# serving executor vs. a transport thread, or concurrent fast-path
# callers).  With a process-global flag, interleaved enter/exit between
# threads can restore the wrong previous value and leave grad disabled
# for everyone — including a training loop elsewhere.
_GRAD_MODE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode).

    Thread-safe: each thread toggles only its own grad mode, so
    concurrent inference never disturbs a training thread.
    """
    previous = is_grad_enabled()
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations on this thread record gradient
    information."""
    return getattr(_GRAD_MODE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting may both prepend axes and stretch length-1 axes; the adjoint
    of broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype.kind in "iub" and dtype is None:
        arr = arr.astype(np.float64)
    return arr


class Tensor:
    """An n-dimensional array supporting reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.  Integer input is promoted to
        float64 because gradients are real-valued.
    requires_grad:
        If true, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data: np.ndarray = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: np.random.Generator | None = None,
              requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    @classmethod
    def _make(cls, data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a graph node from an op result (internal)."""
        parents = tuple(parents)
        requires = is_grad_enabled() \
            and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar tensors; non-scalar roots require an
        explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"output gradient shape {grad.shape} != tensor shape {self.data.shape}")

        # Topological order via iterative DFS (avoids recursion limits on
        # deep networks).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            node._accumulate_into(grads, node_grad)
        # The root itself may be a leaf.
        if self._backward is None and self._parents == ():
            pass

    def _accumulate_into(self, grads: dict[int, np.ndarray],
                         node_grad: np.ndarray) -> None:
        """Run this node's backward closure, accumulating parent grads."""
        parent_grads = self._backward(node_grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad
            if parent._backward is None:
                # Leaf tensors accumulate immediately so that shared leaves
                # reached through several paths still sum correctly even when
                # the topological order visits them once.
                pass

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        out_data = a.data + b.data

        def backward(grad):
            return (_unbroadcast(grad, a.data.shape),
                    _unbroadcast(grad, b.data.shape))

        return Tensor._make(out_data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(grad):
            return (-grad,)

        return Tensor._make(-a.data, (a,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        out_data = a.data * b.data

        def backward(grad):
            return (_unbroadcast(grad * b.data, a.data.shape),
                    _unbroadcast(grad * a.data, b.data.shape))

        return Tensor._make(out_data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        out_data = a.data / b.data

        def backward(grad):
            return (_unbroadcast(grad / b.data, a.data.shape),
                    _unbroadcast(-grad * a.data / (b.data ** 2), b.data.shape))

        return Tensor._make(out_data, (a, b), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("only scalar exponents are supported")
        a = self
        out_data = a.data ** exponent

        def backward(grad):
            return (grad * exponent * a.data ** (exponent - 1),)

        return Tensor._make(out_data, (a,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        out_data = a.data @ b.data

        def backward(grad):
            if a.data.ndim == 1 and b.data.ndim == 1:
                return (grad * b.data, grad * a.data)
            if a.data.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = (grad[..., None, :] * b.data).sum(axis=-1)
                ga = _unbroadcast(ga, a.data.shape)
                gb = _unbroadcast(a.data[:, None] * grad[..., None, :], b.data.shape)
                return (ga, gb)
            if b.data.ndim == 1:
                ga = _unbroadcast(grad[..., :, None] * b.data, a.data.shape)
                gb = _unbroadcast((grad[..., :, None] * a.data).sum(axis=-2),
                                  b.data.shape)
                return (ga, gb)
            ga = grad @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ grad
            return (_unbroadcast(ga, a.data.shape), _unbroadcast(gb, b.data.shape))

        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (a,), backward)

    def log(self) -> "Tensor":
        a = self

        def backward(grad):
            return (grad / a.data,)

        return Tensor._make(np.log(a.data), (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)

        def backward(grad):
            return (grad * 0.5 / out_data,)

        return Tensor._make(out_data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._make(out_data, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        out_data = 1.0 / (1.0 + np.exp(-a.data))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (a,), backward)

    def abs(self) -> "Tensor":
        a = self

        def backward(grad):
            return (grad * np.sign(a.data),)

        return Tensor._make(np.abs(a.data), (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(a.data * mask, (a,), backward)

    def hardtanh(self, low: float = -1.0, high: float = 1.0) -> "Tensor":
        """Piecewise-linear saturation, the BNN pre-binarization activation."""
        a = self
        out_data = np.clip(a.data, low, high)
        mask = (a.data > low) & (a.data < high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(out_data, (a,), backward)

    def sign_ste(self, clip: float = 1.0) -> "Tensor":
        """Binarize to ±1 with the straight-through estimator.

        Forward is ``sign`` (with ``sign(0) = +1`` so outputs are strictly
        binary); backward passes the gradient unchanged where ``|x| <= clip``
        and zero elsewhere — the hard-tanh STE of Courbariaux et al. used by
        the paper.
        """
        a = self
        out_data = np.where(a.data >= 0, 1.0, -1.0)
        mask = np.abs(a.data) <= clip

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(out_data, (a,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        a = self
        out_data = np.clip(a.data, low, high)
        mask = (a.data >= low) & (a.data <= high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(out_data, (a,), backward)

    def maximum(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        out_data = np.maximum(a.data, b.data)
        a_wins = a.data >= b.data

        def backward(grad):
            return (_unbroadcast(grad * a_wins, a.data.shape),
                    _unbroadcast(grad * ~a_wins, b.data.shape))

        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(ax % a.data.ndim for ax in axes)
                for ax in sorted(axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, a.data.shape).copy(),)

        return Tensor._make(out_data, (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.mean(axis=axis, keepdims=keepdims)
        count = a.data.size / out_data.size

        def backward(grad):
            g = grad / count
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(ax % a.data.ndim for ax in axes)
                for ax in sorted(axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, a.data.shape).copy(),)

        return Tensor._make(out_data, (a,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(ax % a.data.ndim for ax in axes)
                for ax in sorted(axes):
                    g = np.expand_dims(g, ax)
                    o = np.expand_dims(o, ax)
            mask = a.data == o
            # Split gradient between ties, matching the subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            return (mask * g / counts,)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        out_data = a.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(a.data.shape),)

        return Tensor._make(out_data, (a,), backward)

    def flatten_from(self, start_axis: int = 1) -> "Tensor":
        """Flatten all axes from ``start_axis`` onward (batch-preserving)."""
        lead = self.data.shape[:start_axis]
        return self.reshape(*lead, -1)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        a = self
        if axes is None:
            axes = tuple(reversed(range(a.data.ndim)))
        axes = tuple(axes)
        inverse = tuple(np.argsort(axes))
        out_data = a.data.transpose(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(out_data, (a,), backward)

    def __getitem__(self, index) -> "Tensor":
        a = self
        out_data = a.data[index]

        def backward(grad):
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(out_data, (a,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero padding; ``pad_width`` follows :func:`numpy.pad` conventions."""
        a = self
        pad_width = tuple((int(lo), int(hi)) for lo, hi in pad_width)
        out_data = np.pad(a.data, pad_width)
        slices = tuple(slice(lo, lo + n) for (lo, _), n in zip(pad_width, a.data.shape))

        def backward(grad):
            return (grad[slices],)

        return Tensor._make(out_data, (a,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            pieces = []
            for start, stop in zip(offsets[:-1], offsets[1:]):
                idx = [slice(None)] * grad.ndim
                idx[axis] = slice(int(start), int(stop))
                pieces.append(grad[tuple(idx)])
            return tuple(pieces)

        return Tensor._make(out_data, tensors, backward)

    # ------------------------------------------------------------------
    # Softmax family (implemented here for numerical stability)
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        a = self
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        softmax = np.exp(out_data)

        def backward(grad):
            return (grad - softmax * grad.sum(axis=axis, keepdims=True),)

        return Tensor._make(out_data, (a,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    # ------------------------------------------------------------------
    # Custom ops
    # ------------------------------------------------------------------
    @staticmethod
    def from_op(data: np.ndarray, parents: Sequence["Tensor"],
                backward: Callable[[np.ndarray], tuple]) -> "Tensor":
        """Public hook for defining custom differentiable operations.

        ``backward(grad_out)`` must return one gradient array (or ``None``)
        per parent.  Used by the convolution and pooling layers.
        """
        return Tensor._make(np.asarray(data), tuple(parents), backward)
