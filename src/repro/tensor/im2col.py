"""Lowering of convolutions to matrix multiplication (im2col / col2im).

Convolutional layers in :mod:`repro.nn` lower the sliding-window dot products
of Eq. (2) of the paper to a single large GEMM, which is the only way to get
acceptable training throughput from numpy.  ``col2im`` is the exact adjoint of
``im2col`` and is used in the backward pass.

All functions operate on batched channel-first data:

* 1-D signals: ``(N, C, L)`` — ECG leads, single EEG electrodes.
* 2-D maps: ``(N, C, H, W)`` — EEG time x electrode images, image data.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_length",
    "im2col_1d",
    "col2im_1d",
    "im2col_2d",
    "col2im_2d",
]


def conv_output_length(length: int, kernel: int, stride: int = 1,
                       padding: int = 0) -> int:
    """Output length of a convolution/pooling window sweep.

    Matches the framework convention ``floor((L + 2p - k) / s) + 1``.
    """
    if kernel > length + 2 * padding:
        raise ValueError(
            f"kernel {kernel} larger than padded input {length + 2 * padding}")
    return (length + 2 * padding - kernel) // stride + 1


def _strided_windows_1d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """View of shape ``(N, C, L_out, K)`` over ``(N, C, L)`` without copying."""
    n, c, length = x.shape
    l_out = (length - kernel) // stride + 1
    sn, sc, sl = x.strides
    return np.lib.stride_tricks.as_strided(
        x, shape=(n, c, l_out, kernel), strides=(sn, sc, sl * stride, sl),
        writeable=False)


def im2col_1d(x: np.ndarray, kernel: int, stride: int = 1,
              padding: int = 0) -> np.ndarray:
    """Lower ``(N, C, L)`` to columns ``(N, L_out, C * K)``.

    Each output row holds one receptive field, flattened channel-major, so a
    convolution is ``cols @ weight.reshape(C_out, C*K).T``.
    """
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding)))
    windows = _strided_windows_1d(x, kernel, stride)      # (N, C, L_out, K)
    n, c, l_out, k = windows.shape
    return windows.transpose(0, 2, 1, 3).reshape(n, l_out, c * k)


def col2im_1d(cols: np.ndarray, input_shape: tuple[int, int, int], kernel: int,
              stride: int = 1, padding: int = 0) -> np.ndarray:
    """Adjoint of :func:`im2col_1d`: scatter-add columns back to a signal."""
    n, c, length = input_shape
    padded_len = length + 2 * padding
    l_out = (padded_len - kernel) // stride + 1
    if cols.shape != (n, l_out, c * kernel):
        raise ValueError(f"cols shape {cols.shape} inconsistent with "
                         f"input {input_shape}, k={kernel}, s={stride}, p={padding}")
    windows = cols.reshape(n, l_out, c, kernel).transpose(0, 2, 1, 3)
    out = np.zeros((n, c, padded_len), dtype=cols.dtype)
    for k in range(kernel):
        out[:, :, k:k + l_out * stride:stride] += windows[:, :, :, k]
    if padding:
        out = out[:, :, padding:padding + length]
    return out


def _strided_windows_2d(x: np.ndarray, kh: int, kw: int,
                        sh: int, sw: int) -> np.ndarray:
    """View of shape ``(N, C, H_out, W_out, KH, KW)`` over ``(N, C, H, W)``."""
    n, c, h, w = x.shape
    h_out = (h - kh) // sh + 1
    w_out = (w - kw) // sw + 1
    s0, s1, s2, s3 = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, h_out, w_out, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
        writeable=False)


def im2col_2d(x: np.ndarray, kernel: tuple[int, int],
              stride: tuple[int, int] = (1, 1),
              padding: tuple[int, int] = (0, 0)) -> np.ndarray:
    """Lower ``(N, C, H, W)`` to columns ``(N, H_out * W_out, C * KH * KW)``."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    windows = _strided_windows_2d(x, kh, kw, sh, sw)
    n, c, h_out, w_out, _, _ = windows.shape
    return windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n, h_out * w_out, c * kh * kw)


def col2im_2d(cols: np.ndarray, input_shape: tuple[int, int, int, int],
              kernel: tuple[int, int], stride: tuple[int, int] = (1, 1),
              padding: tuple[int, int] = (0, 0)) -> np.ndarray:
    """Adjoint of :func:`im2col_2d`."""
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    hp, wp = h + 2 * ph, w + 2 * pw
    h_out = (hp - kh) // sh + 1
    w_out = (wp - kw) // sw + 1
    if cols.shape != (n, h_out * w_out, c * kh * kw):
        raise ValueError(f"cols shape {cols.shape} inconsistent with "
                         f"input {input_shape}, k={kernel}, s={stride}, p={padding}")
    windows = cols.reshape(n, h_out, w_out, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i:i + h_out * sh:sh, j:j + w_out * sw:sw] += \
                windows[:, :, :, :, i, j]
    if ph or pw:
        out = out[:, :, ph:ph + h, pw:pw + w]
    return out
