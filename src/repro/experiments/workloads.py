"""Module-level sweep point functions (picklable by construction).

Points dispatched by :mod:`repro.experiments.executor` cross a process
boundary, so they must be importable top-level callables.  This module
collects the stock workloads the CLI ``sweep`` command, the throughput
benchmarks and the tests all share.  Every workload takes a ``seed``
parameter and is deterministic given its full parameter dict — the
property the sweep resume/equality contract relies on.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["ber_point", "rram_inference_point", "latency_point"]


def ber_point(cycles: float, mode: str = "2T2R", n_cells: int = 4096,
              seed: int = 0) -> dict[str, float]:
    """Monte-Carlo bit error rate of one Fig. 4 sweep point.

    Programs ``n_cells`` random bits into a wear-aged array and counts
    read-back errors through the noisy sense amplifiers.
    """
    from repro.rram import RRAMArray

    rng = np.random.default_rng(seed)
    side = int(np.sqrt(n_cells))
    array = RRAMArray(side, side, rng=rng, mode=mode)
    array.wear(int(cycles) - 1)
    bits = rng.integers(0, 2, (side, side)).astype(np.uint8)
    array.program(bits)
    errors = int((array.read_all() != bits).sum())
    return {"ber": errors / (side * side), "cells": float(side * side)}


def rram_inference_point(sigma: float, seed: int = 0, n_inputs: int = 32,
                         in_features: int = 128, out_features: int = 16
                         ) -> dict[str, float]:
    """Agreement of a noisy RRAM dense layer against the folded software
    reference — one point of an offset-sigma robustness sweep (the §II-B
    error-tolerance argument as a sweepable workload).

    Only the sense-amplifier offset varies across the sweep: device
    variability is held at zero for every point, so the series isolates
    the swept variable (at ``sigma=0`` the config is noise-free and takes
    the fast path — agreement exactly 1).
    """
    from repro import nn
    from repro.nn.binary import fold_batchnorm_sign
    from repro.rram import (AcceleratorConfig, DeviceParameters,
                            InMemoryDenseLayer, SenseParameters)

    rng = np.random.default_rng(seed)
    layer = nn.BinaryLinear(in_features, out_features, rng=rng)
    bn = nn.BatchNorm1d(out_features)
    bn.set_buffer("running_mean", rng.standard_normal(out_features))
    bn.set_buffer("running_var", rng.uniform(0.5, 2.0, out_features))
    bn.eval()
    folded = fold_batchnorm_sign(layer, bn)
    device = DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                              broadening=0.0, hrs_drift=0.0,
                              device_mismatch=1.0)
    config = AcceleratorConfig(device=device,
                               sense=SenseParameters(offset_sigma=sigma))
    hw = InMemoryDenseLayer(folded, config, rng)
    x = rng.integers(0, 2, (n_inputs, in_features)).astype(np.uint8)
    agreement = float((hw.forward_bits(x) == folded.forward_bits(x)).mean())
    return {"agreement": agreement}


def latency_point(index: int, seed: int = 0, blocking_ms: float = 0.0,
                  spin_elems: int = 50_000, fail_flag: str = "",
                  fail_at: int = -1) -> dict[str, float]:
    """A scheduler-calibration point: bounded blocking latency plus a small
    deterministic compute kernel.

    Models the shape of real sweep points that wait on external resources
    (device programming, storage, a queue) — the regime where pool
    execution overlaps latency even on few cores.  The metric is a pure
    function of ``(index, seed)``, so serial and parallel runs must agree
    byte for byte.

    ``fail_flag``/``fail_at`` are the crash-recovery test hook: while the
    file named by ``fail_flag`` exists, points with ``index >= fail_at``
    raise — a reproducible mid-grid "crash" that disappears on resume.
    """
    import pathlib

    if fail_flag and 0 <= fail_at <= index \
            and pathlib.Path(fail_flag).exists():
        raise RuntimeError(f"simulated crash at point {index}")
    if blocking_ms > 0:
        time.sleep(blocking_ms / 1e3)
    rng = np.random.default_rng(seed + index)
    values = rng.standard_normal(int(spin_elems))
    return {"checksum": float(np.sort(values)[: 100].sum()),
            "index": float(index)}
