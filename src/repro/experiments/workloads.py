"""Module-level sweep point functions (picklable by construction).

Points dispatched by :mod:`repro.experiments.executor` cross a process
boundary, so they must be importable top-level callables.  This module
collects the stock workloads the CLI ``sweep`` command, the throughput
benchmarks and the tests all share.  Every workload takes a ``seed``
parameter and is deterministic given its full parameter dict — the
property the sweep resume/equality contract relies on.

The Monte-Carlo workloads additionally follow the engine contract of
:mod:`repro.rram.mc`: the root seed stream builds/programs, child stream
``t`` reads trial ``t``, and the structural build is memoized through
:func:`repro.experiments.executor.cached_plan` — so neither trial
batching nor plan caching can change a single recorded byte relative to
a cold, serial evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ber_point", "rram_inference_point", "sharded_robustness_point",
           "trained_robustness_point", "lifetime_point", "yield_point",
           "latency_point", "SweepWorkload", "SWEEP_WORKLOADS"]


def _cell_geometry(n_cells: int) -> tuple[int, int]:
    """Exact array geometry for ``n_cells``: square when possible, one
    word line otherwise — never silently dropping cells (the historic
    ``int(np.sqrt(n_cells))`` truncation lost up to ``2*side`` cells for
    non-square counts)."""
    n_cells = int(n_cells)
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells}")
    side = int(np.sqrt(n_cells))
    while side * side > n_cells:     # guard float-sqrt edge cases
        side -= 1
    if side * side == n_cells:
        return side, side
    return 1, n_cells


def ber_point(cycles: float, mode: str = "2T2R", n_cells: int = 4096,
              seed: int = 0, trials: int = 1,
              trial_chunk: int | None = None) -> dict[str, float]:
    """Monte-Carlo bit error rate of one Fig. 4 sweep point.

    Programs ``n_cells`` random bits into a wear-aged array once, then
    runs ``trials`` noisy read-back trials through the trial-batched
    engine (:mod:`repro.rram.mc`): the root ``seed`` stream programs the
    array, child stream ``t`` reads trial ``t``, so the statistics are
    bit-identical to a serial per-trial loop over the same streams for
    any ``trial_chunk``.  The programmed plan is cached per worker
    (keyed by geometry/mode/wear/seed), so re-runs and trial-count
    extensions skip the expensive device-sampling program pass.
    """
    from repro.experiments.executor import cached_plan
    from repro.rram import RRAMArray, read_bit_errors, trial_streams

    rows, cols = _cell_geometry(n_cells)

    def _build():
        rng = np.random.default_rng(seed)
        array = RRAMArray(rows, cols, rng=rng, mode=mode)
        array.wear(int(cycles) - 1)
        bits = rng.integers(0, 2, (rows, cols)).astype(np.uint8)
        array.program(bits)
        return array, bits

    array, bits = cached_plan(
        ("ber_point", mode, rows, cols, int(cycles), seed), _build)
    errors = read_bit_errors(array, bits,
                             trial_streams(seed, trials), trial_chunk)
    per_trial = errors / (rows * cols)
    return {"ber": float(per_trial.mean()),
            "ber_std": float(per_trial.std()),
            "cells": float(rows * cols)}


def rram_inference_point(sigma: float, seed: int = 0, n_inputs: int = 32,
                         in_features: int = 128, out_features: int = 16,
                         trials: int = 1, trial_chunk: int | None = None
                         ) -> dict[str, float]:
    """Agreement of a noisy RRAM dense layer against the folded software
    reference — one point of an offset-sigma robustness sweep (the §II-B
    error-tolerance argument as a sweepable workload).

    Only the sense-amplifier offset varies across the sweep: device
    variability is held at zero for every point and ``sigma`` is applied
    at *read time* as a sense override, so the whole sigma series shares
    one programmed plan through the per-worker cache — the sweep programs
    the array once and perturbs it many times.  ``trials`` noisy read
    trials run trial-batched on child streams of ``seed`` (at ``sigma=0``
    offsets are exactly zero and agreement is exactly 1).
    """
    from repro.experiments.executor import cached_plan
    from repro.rram import SenseParameters, trial_streams

    def _build():
        from repro import nn
        from repro.nn.binary import fold_batchnorm_sign
        from repro.rram import (AcceleratorConfig, DeviceParameters,
                                InMemoryDenseLayer)

        rng = np.random.default_rng(seed)
        layer = nn.BinaryLinear(in_features, out_features, rng=rng)
        bn = nn.BatchNorm1d(out_features)
        bn.set_buffer("running_mean", rng.standard_normal(out_features))
        bn.set_buffer("running_var", rng.uniform(0.5, 2.0, out_features))
        bn.eval()
        folded = fold_batchnorm_sign(layer, bn)
        device = DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                                  broadening=0.0, hrs_drift=0.0,
                                  device_mismatch=1.0)
        config = AcceleratorConfig(
            device=device, sense=SenseParameters(offset_sigma=0.0))
        # fast_path=False keeps the physical margins resident: the cached
        # plan must stay readable at every sense sigma of the sweep.
        hw = InMemoryDenseLayer(folded, config, rng, fast_path=False)
        x = rng.integers(0, 2, (n_inputs, in_features)).astype(np.uint8)
        return hw, x, folded.forward_bits(x)

    hw, x, reference = cached_plan(
        ("rram_inference", seed, n_inputs, in_features, out_features),
        _build)
    out = hw.forward_bits_trials(
        x, trial_streams(seed, trials),
        sense=SenseParameters(offset_sigma=sigma), trial_chunk=trial_chunk)
    per_trial = (out == reference[None]).mean(axis=(1, 2))
    return {"agreement": float(per_trial.mean()),
            "agreement_std": float(per_trial.std())}


def sharded_robustness_point(macro_cols: int, macro_rows: int = 8,
                             sigma: float = 1.5, seed: int = 0,
                             n_inputs: int = 32, in_features: int = 131,
                             out_features: int = 10, trials: int = 1,
                             trial_chunk: int | None = None
                             ) -> dict[str, float]:
    """Agreement of a *sharded multi-macro* dense layer against the folded
    reference, as a function of the macro geometry — the new robustness
    axis the sharded backend opens: the same layer, the same read-offset
    sigma, but split across more (smaller) or fewer (larger) chips.

    ``in_features`` defaults to a prime so almost every geometry produces
    non-divisible tail shards.  Device variability is zero and ``sigma``
    is applied at read time as a sense override, so the whole geometry
    series shares one folded layer while each geometry programs its own
    shard grid (cached per worker, keyed by the geometry).  Trials run
    trial-batched on per-(shard, trial) child streams
    (:func:`repro.rram.mc.shard_streams`); at ``sigma=0`` the reduction
    is exact and agreement is exactly 1.
    """
    from repro.experiments.executor import cached_plan
    from repro.rram import SenseParameters, trial_streams

    def _build():
        from repro import nn
        from repro.nn.binary import fold_batchnorm_sign
        from repro.rram import (AcceleratorConfig, DeviceParameters,
                                InMemoryDenseLayer, MacroGeometry,
                                ShardedController)

        rng = np.random.default_rng(seed)
        layer = nn.BinaryLinear(in_features, out_features, rng=rng)
        bn = nn.BatchNorm1d(out_features)
        bn.set_buffer("running_mean", rng.standard_normal(out_features))
        bn.set_buffer("running_var", rng.uniform(0.5, 2.0, out_features))
        bn.eval()
        folded = fold_batchnorm_sign(layer, bn)
        device = DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                                  broadening=0.0, hrs_drift=0.0,
                                  device_mismatch=1.0)
        config = AcceleratorConfig(
            device=device, sense=SenseParameters(offset_sigma=0.0))
        # fast_path=False keeps every shard's physical margins resident so
        # the cached grid can be read at any sense sigma of the sweep.
        controller = ShardedController(
            folded.weight_bits, config=config, rng=rng, fast_path=False,
            macro=MacroGeometry(int(macro_rows), int(macro_cols)))
        hw = InMemoryDenseLayer(folded, controller=controller)
        x = rng.integers(0, 2, (n_inputs, in_features)).astype(np.uint8)
        return hw, x, folded.forward_bits(x)

    hw, x, reference = cached_plan(
        ("sharded_robustness", int(macro_rows), int(macro_cols), seed,
         n_inputs, in_features, out_features), _build)
    out = hw.forward_bits_trials(
        x, trial_streams(seed, trials),
        sense=SenseParameters(offset_sigma=sigma), trial_chunk=trial_chunk)
    per_trial = (out == reference[None]).mean(axis=(1, 2))
    return {"agreement": float(per_trial.mean()),
            "agreement_std": float(per_trial.std()),
            "n_macros": float(hw.controller.n_macros),
            "utilization": float(hw.controller.placement.utilization)}


def trained_robustness_point(sigma: float, weights: str = "clean",
                             model: str = "eeg",
                             mode: str = "binary_classifier",
                             train_sigma: float = 1.5,
                             epochs: int = 0, seed: int = 0,
                             trials: int = 1,
                             trial_chunk: int | None = None
                             ) -> dict[str, float]:
    """Validation accuracy of a *deployed* demo classifier under sense
    noise — the Fig. 4 sigma-robustness story on real weights.

    ``weights`` selects what gets programmed onto the chip: ``"seeded"``
    (the untrained control every pre-training table measured),
    ``"clean"`` (recipe-trained, no noise in the loop) or ``"noise"``
    (recipe-trained with the read-noise surrogate at ``train_sigma`` —
    :mod:`repro.nn.noise`).  The variant trains once per worker (cached
    like a programmed plan), its classifier is programmed with zeroed
    device variability, and ``sigma`` is applied at read time as a sense
    override — one training run and one programmed chip serve the whole
    sigma series.  ``epochs=0`` means the recipe's own budget; ``mode``
    is the binarization flavour (the default matches the paper's
    classifier-on-chip deployment, which is also where the demo recipes
    train well enough for robustness differences to clear MC noise).
    """
    from repro.experiments.executor import cached_plan
    from repro.rram import SenseParameters, trial_streams

    def _build():
        from repro.experiments.training import (seeded_baseline,
                                                train_demo_model)
        from repro.rram import (AcceleratorConfig, DeviceParameters,
                                classifier_input_bits, deploy_classifier)

        n_epochs = None if int(epochs) <= 0 else int(epochs)
        if weights == "seeded":
            demo = seeded_baseline(model, mode, seed=seed)
        elif weights == "clean":
            demo = train_demo_model(model, mode, epochs=n_epochs, seed=seed)
        elif weights == "noise":
            demo = train_demo_model(model, mode,
                                    noise_sigma=float(train_sigma),
                                    epochs=n_epochs, seed=seed)
        else:
            raise ValueError(f"weights must be seeded/clean/noise, "
                             f"got {weights!r}")
        device = DeviceParameters(sigma_lrs0=0.0, sigma_hrs0=0.0,
                                  broadening=0.0, hrs_drift=0.0,
                                  device_mismatch=1.0)
        config = AcceleratorConfig(
            device=device, sense=SenseParameters(offset_sigma=0.0))
        # fast_path=False keeps the physical margins resident: the cached
        # programmed classifier must stay readable at every sweep sigma.
        hw = deploy_classifier(demo.model, config,
                               np.random.default_rng(seed),
                               fast_path=False)
        bits = classifier_input_bits(demo.model, demo.val_inputs)
        return hw, bits, np.asarray(demo.val_labels), demo.val_accuracy

    hw, bits, labels, clean_acc = cached_plan(
        ("trained_robustness", str(model), str(mode), str(weights),
         float(train_sigma), int(epochs), seed), _build)
    predicted = hw.predict_trials(
        bits, trial_streams(seed, trials),
        sense=SenseParameters(offset_sigma=sigma), trial_chunk=trial_chunk)
    per_trial = (predicted == labels[None]).mean(axis=1)
    return {"accuracy": float(per_trial.mean()),
            "accuracy_std": float(per_trial.std()),
            "clean_accuracy": float(clean_acc)}


def lifetime_point(years: float, temp_c: float = 125.0, ecc: str = "none",
                   seed: int = 0, n_inputs: int = 32,
                   in_features: int = 256, out_features: int = 32,
                   trials: int = 1, trial_chunk: int | None = None
                   ) -> dict[str, float]:
    """Agreement of an *aged* noisy RRAM dense layer against the folded
    reference — one point of the accuracy-vs-storage-years curve, with or
    without SECDED ECC on the weight store.

    Unlike the zeroed-variability robustness workloads, this point keeps
    the *realistic* device statistics (aging flips nothing on an ideal
    device: the margins are tens of sigma wide).  The layer is programmed
    once, drifted by ``years`` of storage at ``temp_c`` through the
    Arrhenius-mapped :class:`~repro.rram.reliability.RetentionModel`
    (program-time transform, so trial streams stay untouched), and then
    read ``trials`` times trial-batched.  ``ecc="secded"`` stores the
    weights behind the (72, 64) code instead
    (:class:`~repro.rram.ecc.EccMemoryController`) — the comparison that
    quantifies how much usable lifetime ECC buys at its 1.125x
    redundancy.
    """
    from repro.experiments.executor import cached_plan
    from repro.rram import trial_streams

    def _build():
        from repro import nn
        from repro.nn.binary import fold_batchnorm_sign
        from repro.rram import (AcceleratorConfig, EccMemoryController,
                                InMemoryDenseLayer, LifetimeConfig,
                                MemoryController)
        from repro.runtime.backends import resolve_ecc

        rng = np.random.default_rng(seed)
        layer = nn.BinaryLinear(in_features, out_features, rng=rng)
        bn = nn.BatchNorm1d(out_features)
        bn.set_buffer("running_mean", rng.standard_normal(out_features))
        bn.set_buffer("running_var", rng.uniform(0.5, 2.0, out_features))
        bn.eval()
        folded = fold_batchnorm_sign(layer, bn)
        config = AcceleratorConfig()      # realistic device + sense
        lifetime = LifetimeConfig.years(float(years), float(temp_c))
        code = resolve_ecc(ecc)
        if code is not None:
            controller = EccMemoryController(
                folded.weight_bits, config, rng, code=code,
                lifetime=lifetime)
        else:
            controller = MemoryController(
                folded.weight_bits, config, rng, lifetime=lifetime)
        hw = InMemoryDenseLayer(folded, controller=controller)
        x = rng.integers(0, 2, (n_inputs, in_features)).astype(np.uint8)
        return hw, x, folded.forward_bits(x), lifetime

    hw, x, reference, lifetime = cached_plan(
        ("lifetime_point", float(years), float(temp_c), str(ecc), seed,
         n_inputs, in_features, out_features), _build)
    out = hw.forward_bits_trials(x, trial_streams(seed, trials),
                                 trial_chunk=trial_chunk)
    per_trial = (out == reference[None]).mean(axis=(1, 2))
    return {"agreement": float(per_trial.mean()),
            "agreement_std": float(per_trial.std()),
            "bake_hours": float(lifetime.bake_hours()),
            "redundancy": float(getattr(hw.controller, "redundancy", 1.0))}


def yield_point(traffic_msps: float, mode: str = "2T2R",
                cycles: float = 1e8, seed: int = 0, n_chips: int = 500,
                die_sigma: float = 0.10, ber_limit: float = 1e-3,
                per_chip_msps: float = 1.0) -> dict[str, float]:
    """Fleet capacity at one traffic level from a die-population yield
    study: how many chips must be provisioned to serve ``traffic_msps``
    mega-scans/sec when only the yielding fraction of dies (analytic BER
    within ``ber_limit``) can be deployed.

    Wraps :class:`~repro.rram.reliability.YieldAnalysis` — per-die median
    resistances drawn log-normally with ``die_sigma``, BER evaluated
    closed-form per die — and reports the worst-chip BER of the sampled
    population alongside the provisioning count
    ``ceil(traffic / (per_chip_throughput * yield))``.
    """
    import math

    from repro.rram import DeviceParameters, YieldAnalysis

    result = YieldAnalysis(DeviceParameters(), die_sigma=float(die_sigma),
                           n_chips=int(n_chips), ber_limit=float(ber_limit),
                           seed=int(seed)).run(float(cycles), mode)
    fraction = result.yield_fraction
    if fraction > 0:
        chips = math.ceil(float(traffic_msps)
                          / (float(per_chip_msps) * fraction))
    else:
        chips = float("inf")
    return {"yield_fraction": float(fraction),
            "worst_chip_ber": float(result.worst_chip_ber),
            "chips_needed": float(chips)}


def latency_point(index: int, seed: int = 0, blocking_ms: float = 0.0,
                  spin_elems: int = 50_000, fail_flag: str = "",
                  fail_at: int = -1) -> dict[str, float]:
    """A scheduler-calibration point: bounded blocking latency plus a small
    deterministic compute kernel.

    Models the shape of real sweep points that wait on external resources
    (device programming, storage, a queue) — the regime where pool
    execution overlaps latency even on few cores.  The metric is a pure
    function of ``(index, seed)``, so serial and parallel runs must agree
    byte for byte.

    ``fail_flag``/``fail_at`` are the crash-recovery test hook: while the
    file named by ``fail_flag`` exists, points with ``index >= fail_at``
    raise — a reproducible mid-grid "crash" that disappears on resume.
    """
    import pathlib

    if fail_flag and 0 <= fail_at <= index \
            and pathlib.Path(fail_flag).exists():
        raise RuntimeError(f"simulated crash at point {index}")
    if blocking_ms > 0:
        time.sleep(blocking_ms / 1e3)
    rng = np.random.default_rng(seed + index)
    values = rng.standard_normal(int(spin_elems))
    return {"checksum": float(np.sort(values)[: 100].sum()),
            "index": float(index)}


# ---------------------------------------------------------------------------
# Sweep workload registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepWorkload:
    """One CLI-sweepable workload: the point function plus the default
    grid and how to report it.

    ``axes(trials)`` returns the keyword grid for
    :func:`repro.experiments.sweep.grid`; workloads without a
    Monte-Carlo trial axis simply omit ``trials`` from it (the CLI
    filters its series on the trial count only when present).  New
    workloads register here — the ``sweep`` sub-command derives its
    choices and help text from this table, so a registration is the
    whole integration.
    """

    name: str
    fn: Callable[..., dict]
    axes: Callable[[int], dict]
    x_axis: str
    metric: str
    split: str
    description: str


SWEEP_WORKLOADS: dict[str, SweepWorkload] = {w.name: w for w in [
    SweepWorkload(
        name="ber", fn=ber_point,
        axes=lambda trials: dict(
            cycles=[int(c) for c in np.geomspace(1e8, 7e8, 8)],
            mode=("1T1R", "2T2R"), n_cells=(4096,), seed=(0,),
            trials=(trials,)),
        x_axis="cycles", metric="ber", split="mode",
        description="Monte-Carlo Fig. 4 error rates vs endurance"),
    SweepWorkload(
        name="robustness", fn=rram_inference_point,
        axes=lambda trials: dict(
            sigma=[round(s, 3) for s in np.linspace(0.0, 2.5, 8)],
            seed=(0, 1), trials=(trials,)),
        x_axis="sigma", metric="agreement", split="seed",
        description="agreement vs sense-offset sigma"),
    SweepWorkload(
        name="sharded", fn=sharded_robustness_point,
        axes=lambda trials: dict(
            macro_cols=(8, 16, 32, 64), macro_rows=(8,), sigma=(1.5,),
            seed=(0, 1), trials=(trials,)),
        x_axis="macro_cols", metric="agreement", split="seed",
        description="agreement vs macro geometry on the multi-chip "
                    "backend"),
    SweepWorkload(
        name="trained_robustness", fn=trained_robustness_point,
        axes=lambda trials: dict(
            sigma=[round(s, 3) for s in np.linspace(0.0, 2.5, 6)],
            weights=("seeded", "clean", "noise"), model=("eeg",),
            seed=(0,), trials=(trials,)),
        x_axis="sigma", metric="accuracy", split="weights",
        description="deployed validation accuracy vs sense sigma: "
                    "seeded vs clean-trained vs noise-trained weights"),
    SweepWorkload(
        name="lifetime", fn=lifetime_point,
        axes=lambda trials: dict(
            years=(0.0, 1.0, 3.0, 10.0, 30.0), temp_c=(125.0,),
            ecc=("none", "secded"), seed=(0,), trials=(trials,)),
        x_axis="years", metric="agreement", split="ecc",
        description="accuracy vs storage years at temperature, with and "
                    "without SECDED ECC"),
    SweepWorkload(
        name="yield", fn=yield_point,
        axes=lambda trials: dict(
            traffic_msps=(1.0, 4.0, 16.0, 64.0), mode=("1T1R", "2T2R"),
            seed=(0,)),
        x_axis="traffic_msps", metric="chips_needed", split="mode",
        description="fleet capacity: chips needed per traffic level at "
                    "the die-population yield"),
]}
