"""Experiment harness: training runner, cross-validation, bench scales."""

from repro.experiments.runner import (TrainConfig, TrainResult,
                                      CrossValResult, train_model,
                                      evaluate_accuracy, evaluate_topk,
                                      predict_scores, evaluate_report,
                                      cross_validate, evaluate_compiled,
                                      backend_agreement,
                                      artifact_agreement)
from repro.experiments.training import (TrainingRecipe, TRAINING_RECIPES,
                                        TrainedDemo, recipe_dataset,
                                        build_recipe_model,
                                        train_demo_model, seeded_baseline)
from repro.experiments.configs import (BenchScale, current_scale, EcgTask,
                                       EegTask, image_dataset, PAPER_RESULTS)
from repro.experiments.tables import render_table, render_series
from repro.experiments.sweep import Sweep, grid
from repro.experiments.executor import (run_parallel, map_parallel,
                                        RateProgress, default_jobs,
                                        cached_plan, clear_plan_cache,
                                        plan_cache_stats)

__all__ = [
    "TrainConfig", "TrainResult", "CrossValResult", "train_model",
    "evaluate_accuracy", "evaluate_topk", "predict_scores",
    "evaluate_report", "cross_validate", "evaluate_compiled",
    "backend_agreement", "artifact_agreement",
    "TrainingRecipe", "TRAINING_RECIPES", "TrainedDemo", "recipe_dataset",
    "build_recipe_model", "train_demo_model", "seeded_baseline",
    "BenchScale", "current_scale", "EcgTask", "EegTask", "image_dataset",
    "PAPER_RESULTS",
    "render_table", "render_series",
    "Sweep", "grid",
    "run_parallel", "map_parallel", "RateProgress", "default_jobs",
    "cached_plan", "clear_plan_cache", "plan_cache_stats",
]
