"""Parameter sweeps with persisted, resumable results.

The paper's evaluation is built from sweeps — filter augmentation (Fig. 7),
programming cycles (Fig. 4), training epochs (Fig. 8) — and each point can
cost minutes of training.  :class:`Sweep` runs a function over a parameter
grid, persists every completed point to a JSON file as it lands, and skips
already-computed points on re-run, so an interrupted study resumes instead
of restarting.

Results are plain JSON (parameters + float metrics), so they can be
post-processed without this library.
"""

from __future__ import annotations

import json
import pathlib
from itertools import product
from typing import Callable, Iterator, Mapping

__all__ = ["Sweep", "grid"]


def grid(**axes) -> list[dict]:
    """Cartesian product of named axes as a list of parameter dicts.

    ``grid(mult=(1, 2, 4), mode=("real", "bnn"))`` yields six points in
    row-major order (last axis fastest).
    """
    if not axes:
        raise ValueError("grid needs at least one axis")
    names = list(axes)
    for name, values in axes.items():
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} is empty")
        axes[name] = values
    return [dict(zip(names, combo))
            for combo in product(*(axes[n] for n in names))]


def _point_key(params: Mapping) -> str:
    """Stable identity of a parameter point (order-independent)."""
    return json.dumps(params, sort_keys=True, default=str)


class Sweep:
    """Run ``fn(**params) -> dict[str, float]`` over a list of points.

    Completed points persist to ``path`` immediately; constructing a Sweep
    over an existing file resumes it.  ``fn`` must be deterministic in its
    parameters (seed through a ``seed`` parameter, as the harnesses do) for
    resume to be meaningful.
    """

    def __init__(self, path, fn: Callable[..., Mapping[str, float]]):
        self.path = pathlib.Path(path)
        self.fn = fn
        self._results: dict[str, dict] = {}
        if self.path.exists():
            records = json.loads(self.path.read_text())
            if not isinstance(records, list):
                raise ValueError(f"{self.path} is not a sweep result file")
            for record in records:
                self._results[_point_key(record["params"])] = record

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def completed(self, params: Mapping) -> bool:
        return _point_key(params) in self._results

    def result(self, params: Mapping) -> dict[str, float]:
        """Metrics of a completed point; KeyError if not yet run."""
        return dict(self._results[_point_key(params)]["metrics"])

    def records(self) -> list[dict]:
        """All completed records (params + metrics), insertion-ordered."""
        return [dict(r) for r in self._results.values()]

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(list(self._results.values()),
                                        indent=1))

    def run(self, points: list[Mapping],
            progress: Callable[[str], None] | None = None
            ) -> Iterator[dict]:
        """Execute missing points, yielding every record (old and new).

        The result file is rewritten after each computed point, so a crash
        loses at most the point in flight.
        """
        for params in points:
            key = _point_key(params)
            if key not in self._results:
                if progress is not None:
                    progress(f"running {key}")
                metrics = self.fn(**params)
                bad = {k: v for k, v in metrics.items()
                       if not isinstance(v, (int, float))}
                if bad:
                    raise TypeError(
                        f"sweep metrics must be numeric, got {bad}")
                self._results[key] = {"params": dict(params),
                                      "metrics": {k: float(v) for k, v
                                                  in metrics.items()}}
                self._flush()
            yield dict(self._results[key])

    def run_all(self, points: list[Mapping],
                progress: Callable[[str], None] | None = None
                ) -> list[dict]:
        """Eager form of :meth:`run`."""
        return list(self.run(points, progress))

    def series(self, x_axis: str, metric: str,
               where: Mapping | None = None
               ) -> tuple[list, list[float]]:
        """Extract ``(xs, ys)`` for plotting: one metric against one
        parameter, optionally filtered by fixed values of other params."""
        where = dict(where or {})
        xs, ys = [], []
        for record in self._results.values():
            params = record["params"]
            if x_axis not in params or metric not in record["metrics"]:
                continue
            if any(params.get(k) != v for k, v in where.items()):
                continue
            xs.append(params[x_axis])
            ys.append(record["metrics"][metric])
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        return [xs[i] for i in order], [ys[i] for i in order]
