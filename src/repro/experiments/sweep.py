"""Parameter sweeps with persisted, resumable results.

The paper's evaluation is built from sweeps — filter augmentation (Fig. 7),
programming cycles (Fig. 4), training epochs (Fig. 8) — and each point can
cost minutes of training.  :class:`Sweep` runs a function over a parameter
grid, persists every completed point as it lands, and skips
already-computed points on re-run, so an interrupted study resumes instead
of restarting.

Results are stored as JSON Lines — one ``{"params": ..., "metrics": ...}``
object per line — so completing a point is a single O(1) append instead of
a rewrite of the whole result set, and the file can be post-processed with
any JSON tooling (or plain ``grep``) without this library.  Legacy files
written by earlier versions as one JSON array are migrated to the
line-oriented layout the first time they are loaded.

For multi-process execution of a grid see
:mod:`repro.experiments.executor`, which dispatches missing points to a
worker pool while this class keeps sole ownership of persistence.
"""

from __future__ import annotations

import json
import pathlib
from itertools import product
from typing import Callable, Iterator, Mapping

__all__ = ["Sweep", "grid"]


def grid(**axes) -> list[dict]:
    """Cartesian product of named axes as a list of parameter dicts.

    ``grid(mult=(1, 2, 4), mode=("real", "bnn"))`` yields six points in
    row-major order (last axis fastest).
    """
    if not axes:
        raise ValueError("grid needs at least one axis")
    names = list(axes)
    for name, values in axes.items():
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} is empty")
        axes[name] = values
    return [dict(zip(names, combo))
            for combo in product(*(axes[n] for n in names))]


def _point_key(params: Mapping) -> str:
    """Stable identity of a parameter point (order-independent)."""
    return json.dumps(params, sort_keys=True, default=str)


def _record_line(record: Mapping) -> str:
    """Canonical one-line serialization of a record.

    Compact separators and caller-side key order: two runs that complete
    the same points in the same order produce byte-identical files, which
    is what the parallel-vs-serial equality contract checks.
    """
    return json.dumps(record, separators=(",", ":"), default=str)


class Sweep:
    """Run ``fn(**params) -> dict[str, float]`` over a list of points.

    Completed points persist to ``path`` immediately; constructing a Sweep
    over an existing file resumes it.  ``fn`` must be deterministic in its
    parameters (seed through a ``seed`` parameter, as the harnesses do) for
    resume to be meaningful.
    """

    def __init__(self, path, fn: Callable[..., Mapping[str, float]]):
        self.path = pathlib.Path(path)
        self.fn = fn
        self._results: dict[str, dict] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        text = self.path.read_text()
        if text.lstrip().startswith("["):
            # Legacy layout: one JSON array holding every record.  Parse it
            # and rewrite as JSON Lines — a one-time migration, after which
            # every completed point is an append.
            records = json.loads(text)
            if not isinstance(records, list):
                raise ValueError(f"{self.path} is not a sweep result file")
            for record in records:
                self._results[_point_key(record["params"])] = record
            self._rewrite()
            return
        lines = [(i, line) for i, line in
                 enumerate(text.splitlines(), start=1) if line.strip()]
        for position, (lineno, line) in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    # A torn final line is what a kill/power-loss during
                    # an append leaves behind.  The completed prefix is
                    # intact: drop the partial record (it re-runs on
                    # resume) and heal the file so later appends don't
                    # land on top of the fragment.
                    import warnings
                    warnings.warn(
                        f"{self.path}:{lineno}: dropping partially "
                        "written final record (interrupted append)")
                    self._rewrite()
                    return
                raise ValueError(
                    f"{self.path}:{lineno} is not a sweep record") from None
            if not isinstance(record, dict) or "params" not in record:
                raise ValueError(f"{self.path} is not a sweep result file")
            self._results[_point_key(record["params"])] = record

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def completed(self, params: Mapping) -> bool:
        return _point_key(params) in self._results

    def result(self, params: Mapping) -> dict[str, float]:
        """Metrics of a completed point; KeyError if not yet run."""
        return dict(self._results[_point_key(params)]["metrics"])

    def records(self) -> list[dict]:
        """All completed records (params + metrics), insertion-ordered."""
        return [dict(r) for r in self._results.values()]

    # ------------------------------------------------------------------
    def _rewrite(self) -> None:
        """Full rewrite (migration only — the hot path appends).

        Atomic: the new layout lands in a sibling temp file and replaces
        the original in one rename, so a crash mid-migration cannot
        destroy previously persisted results.
        """
        import os
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".migrating")
        tmp.write_text(
            "".join(_record_line(r) + "\n" for r in self._results.values()))
        os.replace(tmp, self.path)

    def _append(self, record: Mapping) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as stream:
            stream.write(_record_line(record) + "\n")

    @staticmethod
    def _validated_metrics(metrics: Mapping) -> dict[str, float]:
        bad = {k: v for k, v in metrics.items()
               if not isinstance(v, (int, float))}
        if bad:
            raise TypeError(f"sweep metrics must be numeric, got {bad}")
        return {k: float(v) for k, v in metrics.items()}

    def record_point(self, params: Mapping, metrics: Mapping) -> dict:
        """Persist one externally-computed point (the executor's hook).

        Validates the metrics, stores the record, and appends it to the
        result file.  Returns the stored record.
        """
        record = {"params": dict(params),
                  "metrics": self._validated_metrics(metrics)}
        self._results[_point_key(params)] = record
        self._append(record)
        return record

    def run(self, points: list[Mapping],
            progress: Callable[[str], None] | None = None
            ) -> Iterator[dict]:
        """Execute missing points, yielding every record (old and new).

        Each computed point is appended to the result file before the next
        one starts, so a crash loses at most the point in flight.
        """
        for params in points:
            key = _point_key(params)
            if key not in self._results:
                self.record_point(params, self.fn(**params))
                if progress is not None:
                    progress(f"completed {key}")
            yield dict(self._results[key])

    def run_all(self, points: list[Mapping],
                progress: Callable[[str], None] | None = None
                ) -> list[dict]:
        """Eager form of :meth:`run`."""
        return list(self.run(points, progress))

    def run_parallel(self, points: list[Mapping], jobs: int | None = None,
                     progress: Callable[[str], None] | None = None
                     ) -> list[dict]:
        """Execute missing points on a process pool; see
        :func:`repro.experiments.executor.run_parallel`."""
        from repro.experiments.executor import run_parallel
        return run_parallel(self, points, jobs=jobs, progress=progress)

    def series(self, x_axis: str, metric: str,
               where: Mapping | None = None
               ) -> tuple[list, list[float]]:
        """Extract ``(xs, ys)`` for plotting: one metric against one
        parameter, optionally filtered by fixed values of other params."""
        where = dict(where or {})
        xs, ys = [], []
        for record in self._results.values():
            params = record["params"]
            if x_axis not in params or metric not in record["metrics"]:
                continue
            if any(params.get(k) != v for k, v in where.items()):
                continue
            xs.append(params[x_axis])
            ys.append(record["metrics"][metric])
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        return [xs[i] for i in order], [ys[i] for i in order]
