"""Plain-text table/series rendering for the benchmark harnesses.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, with the paper's value alongside the measured one, so
`pytest benchmarks/ --benchmark-only -s` regenerates a readable version of
the paper's evaluation section.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series"]


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned ASCII table."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title),
             " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: dict[str, Sequence[float]],
                  fmt: str = "{:.4g}") -> str:
    """Render a figure's data as one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [str(x)] + [fmt.format(values[i]) for values in series.values()]
        rows.append(row)
    return render_table(title, headers, rows)
