"""Parallel sweep execution on a process pool.

The paper's figures are parameter sweeps whose points each run a full
training or RRAM-simulated inference — independent by construction (every
point carries its own seed).  This module dispatches the missing points of
a :class:`~repro.experiments.sweep.Sweep` grid to worker processes while
keeping the sweep's resume contract intact:

* **workers are pure**: a worker receives ``(fn, params)``, returns
  ``(params, metrics)`` and touches no files;
* **the parent owns persistence**: records are validated and appended to
  the sweep's JSONL store by the parent only, *in submission order*, so a
  parallel run writes a byte-identical result file to a serial run of the
  same grid (out-of-order completions are buffered until their turn);
* **completed points are skipped before dispatch**, exactly like the
  serial path, so a crashed run — serial or parallel — resumes where it
  stopped;
* **determinism is the point function's job**: seed through a ``seed``
  parameter and the parallel schedule cannot change any result.

``fn`` crosses a process boundary, so it must be picklable — a
module-level function, not a lambda or closure (the workloads in
:mod:`repro.experiments.workloads` are shaped this way).  With
``jobs <= 1`` everything runs in-process through the serial path and no
pickling is required.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Callable, Mapping, Sequence

__all__ = ["run_parallel", "map_parallel", "RateProgress", "default_jobs",
           "cached_plan", "clear_plan_cache", "plan_cache_stats"]


def default_jobs() -> int:
    """Worker count when the caller does not choose one: the cores the
    process is actually allowed to use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:          # platforms without sched_getaffinity
        return os.cpu_count() or 1


class RateProgress:
    """A progress callback that reports throughput in points/sec.

    Wraps an optional inner ``sink`` (``print`` by default when used from
    the CLI); every call emits ``completed k/n (r.r points/sec)``.  When
    each point runs ``trials_per_point`` Monte-Carlo trials internally
    (the trial-batched workloads), the same line also reports trials/sec
    — the number the Fig. 4 throughput claims are stated in.
    """

    def __init__(self, total: int, sink: Callable[[str], None] = print,
                 trials_per_point: int = 1):
        self.total = int(total)
        self.sink = sink
        self.trials_per_point = max(1, int(trials_per_point))
        self.done = 0
        self._start = time.perf_counter()

    @property
    def rate(self) -> float:
        elapsed = time.perf_counter() - self._start
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def trial_rate(self) -> float:
        return self.rate * self.trials_per_point

    def __call__(self, message: str) -> None:
        self.done += 1
        rates = f"{self.rate:.2f} points/sec"
        if self.trials_per_point > 1:
            rates += f", {self.trial_rate:.1f} trials/sec"
        self.sink(f"[{self.done}/{self.total}] {message} ({rates})")


# ---------------------------------------------------------------------------
# Programmed-plan cache (per worker process)
# ---------------------------------------------------------------------------
_PLAN_CACHE: OrderedDict = OrderedDict()
_PLAN_CACHE_CAPACITY = 8
_PLAN_CACHE_HITS = 0
_PLAN_CACHE_MISSES = 0


def cached_plan(key, builder: Callable[[], object]):
    """Build-once cache for the expensive, structural part of a sweep point.

    Monte-Carlo sweep points separate into a *plan* — weights drawn,
    layers folded, RRAM tiles programmed — and a cheap *perturbation*
    (fresh read noise, a different sense sigma).  Points sharing the
    structural parameters can share the plan; this memo keeps the last
    :data:`_PLAN_CACHE_CAPACITY` plans of the current process, so a sweep
    grid programs an array once and perturbs it many times.

    ``key`` must capture everything the built object depends on (weights
    hash or the seed that generated them, geometry, mode) and ``builder``
    must draw all of its randomness from generators created inside the
    builder — never from a stream a later read consumes.  Under that
    contract (the :mod:`repro.rram.mc` stream split) cached and cold
    evaluations are byte-identical, which the property tests enforce.
    Each worker process holds its own cache; nothing crosses a process
    boundary, so pool workers warm up independently.
    """
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
    if key in _PLAN_CACHE:
        _PLAN_CACHE.move_to_end(key)
        _PLAN_CACHE_HITS += 1
        return _PLAN_CACHE[key]
    value = builder()
    _PLAN_CACHE_MISSES += 1
    _PLAN_CACHE[key] = value
    while len(_PLAN_CACHE) > _PLAN_CACHE_CAPACITY:
        _PLAN_CACHE.popitem(last=False)
    return value


def clear_plan_cache() -> None:
    """Drop every cached plan (tests use this to compare cold vs cached)."""
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
    _PLAN_CACHE.clear()
    _PLAN_CACHE_HITS = 0
    _PLAN_CACHE_MISSES = 0


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of this process's plan cache."""
    return {"hits": _PLAN_CACHE_HITS, "misses": _PLAN_CACHE_MISSES,
            "size": len(_PLAN_CACHE)}


def _execute_point(fn: Callable, params: Mapping) -> tuple[dict, Mapping]:
    """Worker body: run one point, return ``(params, metrics)``."""
    return dict(params), fn(**params)


def map_parallel(fn: Callable, points: Sequence[Mapping],
                 jobs: int | None = None) -> list:
    """Persistence-free parallel map: ``fn(**params)`` for every point.

    Results come back in point order.  The building block for callers that
    want pool execution without a sweep file (the CLI uses it to evaluate
    independent backends concurrently).
    """
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs <= 1 or len(points) <= 1:
        return [fn(**params) for params in points]
    from concurrent.futures import ProcessPoolExecutor
    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        futures = [pool.submit(_execute_point, fn, params)
                   for params in points]
        return [future.result()[1] for future in futures]


def run_parallel(sweep, points: Sequence[Mapping], jobs: int | None = None,
                 progress: Callable[[str], None] | None = None
                 ) -> list[dict]:
    """Execute a sweep grid on a process pool; returns every record.

    Drop-in parallel form of :meth:`~repro.experiments.sweep.Sweep.run_all`
    — same skip-completed semantics, same persistence format, same result
    list.  The parent walks ``points`` in order, appending each newly
    computed record to the sweep store as soon as *it and every earlier
    point* have landed; a crash therefore loses only the in-flight window,
    and the surviving file is always a prefix-consistent serial-equivalent
    result set.

    A worker failure is re-raised in the parent after every record that
    precedes the failing point has been persisted — matching where a
    serial run would have stopped.
    """
    from repro.experiments.sweep import _point_key

    jobs = default_jobs() if jobs is None else int(jobs)
    missing = [dict(p) for p in points if not sweep.completed(p)]
    if jobs <= 1 or len(missing) <= 1:
        return sweep.run_all(points, progress)

    from concurrent.futures import ProcessPoolExecutor
    futures: dict[str, object] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(missing))) as pool:
        for params in missing:
            futures[_point_key(params)] = pool.submit(
                _execute_point, sweep.fn, params)
        records = []
        try:
            for params in points:
                key = _point_key(params)
                if not sweep.completed(params):
                    _, metrics = futures[key].result()
                    sweep.record_point(params, metrics)
                    if progress is not None:
                        progress(f"completed {key}")
                records.append(dict(sweep._results[key]))
        except BaseException:
            for future in futures.values():
                future.cancel()
            raise
    return records
