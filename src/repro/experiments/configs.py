"""Benchmark scales and task builders.

Every benchmark harness runs at one of two scales:

* ``bench`` (default) — minutes on a laptop CPU with numpy as the compute
  substrate; dataset sizes, filter counts and epochs are reduced, but the
  protocol (stratified k-fold CV, augmentation, the three binarization
  modes) is the paper's.
* ``paper`` — the full published settings (documented here; running them
  under numpy would take days, they exist so the mapping to the paper is
  explicit and so users with time can launch them).

Select with the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data import (ECGConfig, EEGConfig, ImageConfig, make_ecg_dataset,
                        make_eeg_dataset, make_image_dataset)
from repro.data.dataset import ArrayDataset
from repro.experiments.runner import TrainConfig
from repro.models import BinarizationMode, ECGNet, EEGNet

__all__ = ["BenchScale", "current_scale", "EcgTask", "EegTask",
           "PAPER_RESULTS"]

# Reference values reported by the paper, used in harness printouts so the
# measured column can be compared in place (EXPERIMENTS.md mirrors these).
PAPER_RESULTS = {
    "eeg": {"real": 0.88, "bnn_1x": 0.846, "bnn_aug": 0.86, "aug": 11,
            "bin_classifier": 0.87},
    "ecg": {"real": 0.963, "bnn_1x": 0.921, "bnn_aug": 0.949, "aug": 7,
            "bin_classifier": 0.959},
    "imagenet_top1": {"real": 0.706, "bnn": 0.544, "bin_classifier": 0.70},
    "imagenet_top5": {"real": 0.895, "bnn": 0.775, "bin_classifier": 0.891},
    "fig7_multipliers": (1, 2, 4, 8, 16),
}


@dataclass
class BenchScale:
    """Scale knobs shared by the training benchmarks."""

    name: str
    # ECG task
    ecg_trials: int = 1000
    ecg_samples: int = 300
    ecg_noise: float = 0.10
    ecg_base_filters: int = 8
    ecg_epochs: int = 60
    ecg_folds: int = 2
    ecg_repeats: int = 1
    fig7_multipliers: tuple[int, ...] = (1, 2, 4)
    # EEG task
    eeg_trials: int = 300
    eeg_channels: int = 32
    eeg_samples: int = 160
    eeg_noise: float = 1.2
    eeg_base_filters: int = 4
    eeg_epochs: int = 30
    eeg_folds: int = 2
    eeg_repeats: int = 1
    eeg_bnn_aug: int = 3
    ecg_bnn_aug: int = 3
    # MobileNet / image task
    image_classes: int = 8
    image_per_class: int = 50
    image_size: int = 24
    image_noise: float = 0.2
    mobilenet_width: float = 0.25
    mobilenet_blocks: int = 5
    mobilenet_epochs: int = 20
    mobilenet_lr: float = 3e-3
    batch_size: int = 16
    lr: float = 2e-3
    seed: int = 7


_SCALES = {
    "bench": BenchScale(name="bench"),
    # Paper-published protocol; listed for documentation and opt-in runs.
    "paper": BenchScale(
        name="paper",
        ecg_trials=1000, ecg_samples=750, ecg_noise=0.30,
        ecg_base_filters=32, ecg_epochs=1000, ecg_folds=5, ecg_repeats=5,
        fig7_multipliers=(1, 2, 4, 8, 16),
        eeg_trials=4410, eeg_channels=64, eeg_samples=960, eeg_noise=1.2,
        eeg_base_filters=40, eeg_epochs=1000, eeg_folds=5, eeg_repeats=5,
        eeg_bnn_aug=11, ecg_bnn_aug=7,
        image_classes=1000, image_per_class=1200, image_size=224,
        image_noise=0.2,
        mobilenet_width=1.0, mobilenet_blocks=13, mobilenet_epochs=255,
        mobilenet_lr=1e-2,
        batch_size=64, lr=1e-3, seed=7,
    ),
}


def current_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default ``bench``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}")
    return _SCALES[name]


@dataclass
class EcgTask:
    """Bundled dataset + model factory + training config for the ECG task."""

    scale: BenchScale = field(default_factory=current_scale)

    def dataset(self) -> ArrayDataset:
        return make_ecg_dataset(ECGConfig(
            n_trials=self.scale.ecg_trials,
            n_samples=self.scale.ecg_samples,
            noise_amplitude=self.scale.ecg_noise,
            seed=self.scale.seed))

    def model_factory(self, mode: BinarizationMode,
                      filter_multiplier: int = 1
                      ) -> Callable[[np.random.Generator], ECGNet]:
        scale = self.scale

        def factory(rng: np.random.Generator) -> ECGNet:
            return ECGNet(mode=mode, filter_multiplier=filter_multiplier,
                          n_samples=scale.ecg_samples,
                          base_filters=scale.ecg_base_filters, rng=rng)

        return factory

    @staticmethod
    def fit_hook(model: ECGNet, train_inputs: np.ndarray) -> None:
        model.fit_input_norm(train_inputs)

    def train_config(self) -> TrainConfig:
        return TrainConfig(epochs=self.scale.ecg_epochs,
                           batch_size=self.scale.batch_size,
                           lr=self.scale.lr, seed=self.scale.seed)


@dataclass
class EegTask:
    """Bundled dataset + model factory + training config for the EEG task."""

    scale: BenchScale = field(default_factory=current_scale)

    def dataset(self) -> ArrayDataset:
        return make_eeg_dataset(EEGConfig(
            n_trials=self.scale.eeg_trials,
            n_channels=self.scale.eeg_channels,
            n_samples=self.scale.eeg_samples,
            noise_amplitude=self.scale.eeg_noise,
            seed=self.scale.seed))

    def model_factory(self, mode: BinarizationMode,
                      filter_multiplier: int = 1
                      ) -> Callable[[np.random.Generator], EEGNet]:
        scale = self.scale

        def factory(rng: np.random.Generator) -> EEGNet:
            return EEGNet(mode=mode, filter_multiplier=filter_multiplier,
                          n_channels=scale.eeg_channels,
                          n_samples=scale.eeg_samples,
                          base_filters=scale.eeg_base_filters, rng=rng)

        return factory

    @staticmethod
    def fit_hook(model: EEGNet, train_inputs: np.ndarray) -> None:
        # The paper standardizes EEG per channel; the synthetic generator
        # already emits near-unit-variance signals, and the model's batch
        # norms adapt to residual scale, so no extra fitting is needed.
        del model, train_inputs

    def train_config(self) -> TrainConfig:
        return TrainConfig(epochs=self.scale.eeg_epochs,
                           batch_size=self.scale.batch_size,
                           lr=self.scale.lr,
                           augment_sigma=0.1,   # paper's noise augmentation
                           seed=self.scale.seed)


def image_dataset(scale: BenchScale) -> ArrayDataset:
    """SynthNet dataset at the selected scale (MobileNet benches)."""
    return make_image_dataset(ImageConfig(
        n_classes=scale.image_classes,
        n_per_class=scale.image_per_class,
        image_size=scale.image_size,
        noise_amplitude=scale.image_noise,
        seed=scale.seed))
