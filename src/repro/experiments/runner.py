"""Training and cross-validation harness.

Implements the paper's evaluation protocol (§III-A/B): train from scratch
with Adam, additive-noise data augmentation, k-fold cross-validation with
non-overlapping validation subsets, averaged over repeats.  All randomness
flows from explicit seeds so every benchmark table is reproducible
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.crossval import stratified_kfold_indices
from repro.data.dataset import ArrayDataset
from repro.data.transforms import GaussianNoiseAugment
from repro.nn import CrossEntropyLoss, clip_latent_weights
from repro.nn.module import Module
from repro.optim import Adam, SGD
from repro.tensor import Tensor, no_grad

__all__ = ["TrainConfig", "TrainResult", "CrossValResult", "train_model",
           "evaluate_accuracy", "evaluate_topk", "predict_scores",
           "evaluate_report", "cross_validate", "evaluate_compiled",
           "backend_agreement", "artifact_agreement"]


@dataclass
class TrainConfig:
    """Hyper-parameters for one training run.

    The paper trains 1000 epochs; offline benches default far lower and
    document the paper value in their module docstrings.
    """

    epochs: int = 30
    batch_size: int = 32
    lr: float = 1e-3
    optimizer: str = "adam"          # 'adam' or 'sgd'
    momentum: float = 0.9            # SGD only
    weight_decay: float = 0.0
    augment_sigma: float = 0.0       # additive-noise augmentation
    latent_clip: float = 1.0         # BNN latent-weight clip
    read_noise_sigma: float = 0.0    # RRAM sense-offset sigma in the loop
    # Arm only these binary layers (qualified module names); None = all.
    # Matching the deployment matters: classifier-on-chip readout only
    # perturbs fc layers, so training should too.
    read_noise_layers: tuple[str, ...] | None = None
    seed: int = 0
    track_history: bool = False      # record per-epoch accuracies (Fig. 8)
    eval_topk: tuple[int, ...] = (1,)
    early_stop_patience: int = 0     # 0 disables; needs a validation set
    early_stop_min_delta: float = 0.0


@dataclass
class TrainResult:
    """Outcome of one training run."""

    final_accuracy: float
    history: list[dict[str, float]] = field(default_factory=list)
    stopped_epoch: int | None = None  # early-stopping trigger point, if any


@dataclass
class CrossValResult:
    """Aggregated k-fold cross-validation accuracies."""

    fold_accuracies: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.fold_accuracies.mean())

    @property
    def std(self) -> float:
        return float(self.fold_accuracies.std())

    def __repr__(self) -> str:
        return f"CrossValResult(mean={self.mean:.3f}, std={self.std:.3f})"


def _make_optimizer(model: Module, cfg: TrainConfig):
    if cfg.optimizer == "adam":
        return Adam(model.parameters(), lr=cfg.lr,
                    weight_decay=cfg.weight_decay)
    if cfg.optimizer == "sgd":
        return SGD(model.parameters(), lr=cfg.lr, momentum=cfg.momentum,
                   weight_decay=cfg.weight_decay)
    raise ValueError(f"unknown optimizer {cfg.optimizer!r}")


def evaluate_accuracy(model: Module, inputs: np.ndarray, labels: np.ndarray,
                      batch_size: int = 64) -> float:
    """Top-1 accuracy in eval mode."""
    return evaluate_topk(model, inputs, labels, (1,), batch_size)[1]


def evaluate_topk(model: Module, inputs: np.ndarray, labels: np.ndarray,
                  ks: tuple[int, ...] = (1, 5), batch_size: int = 64
                  ) -> dict[int, float]:
    """Top-k accuracies in eval mode, evaluated in batches.

    One sort over the preallocated score matrix replaces the historic
    per-batch ``argsort`` + per-k Python loop; a cumulative hit mask then
    answers every ``k`` from the single sorted order.  Row-wise sorting
    is independent of batch grouping, so the accuracies are identical to
    the looped form, ties included.
    """
    labels = np.asarray(labels)
    scores = predict_scores(model, inputs, batch_size)
    # Stable sort: the looped form kept the lower class index on tied
    # scores (argsort's default introsort does not), and the docstring
    # promises tie-identical results.
    order = np.argsort(-scores, axis=1, kind="stable")
    hit_at = np.cumsum(order == labels[:, None], axis=1) > 0
    n = len(inputs)
    n_classes = scores.shape[1]
    # k < 1 means an empty candidate set: 0 hits, as in the looped form.
    return {k: float(hit_at[:, min(k, n_classes) - 1].sum()) / n
            if k >= 1 else 0.0 for k in ks}


def predict_scores(model: Module, inputs: np.ndarray,
                   batch_size: int = 64) -> np.ndarray:
    """Raw class scores ``(N, classes)`` in eval mode, batched.

    The output buffer is preallocated after the first batch reveals the
    class count, so large evaluations write in place instead of
    accumulating a Python list and concatenating at the end.
    """
    was_training = model.training
    model.eval()
    n = len(inputs)
    scores: np.ndarray | None = None
    with no_grad():
        for start in range(0, n, batch_size):
            batch = model(Tensor(inputs[start:start + batch_size])).data
            if scores is None:
                scores = np.empty((n,) + batch.shape[1:], dtype=batch.dtype)
            scores[start:start + len(batch)] = batch
    if was_training:
        model.train()
    return scores if scores is not None \
        else np.empty((0, 0), dtype=np.float64)


def evaluate_report(model: Module, inputs: np.ndarray, labels: np.ndarray,
                    positive_class: int = 1, batch_size: int = 64):
    """Full diagnostic report (confusion matrix, sensitivity/specificity,
    ROC AUC) for a binary classifier — see :mod:`repro.metrics`.

    The ROC score for each sample is the positive-class margin
    ``score[pos] - score[neg]``.
    """
    from repro.metrics import classification_report

    scores = predict_scores(model, inputs, batch_size)
    if scores.shape[1] != 2:
        raise ValueError(
            f"diagnostic report expects a binary classifier, got "
            f"{scores.shape[1]} classes")
    predictions = scores.argmax(axis=1)
    margin = scores[:, positive_class] - scores[:, 1 - positive_class]
    return classification_report(labels, predictions, scores=margin,
                                 positive_class=positive_class)


def train_model(model: Module, train_inputs: np.ndarray,
                train_labels: np.ndarray, cfg: TrainConfig,
                val_inputs: np.ndarray | None = None,
                val_labels: np.ndarray | None = None) -> TrainResult:
    """Train a model; optionally track per-epoch validation accuracy.

    With ``cfg.read_noise_sigma > 0`` the RRAM read-noise surrogate is
    armed on every binary layer (:func:`repro.nn.set_read_noise`): each
    training forward perturbs the pre-threshold accumulations like a
    noisy word-line scan at that sense-offset sigma, while validation
    (eval mode) and the gradient path stay noise-free — hardware-in-the-
    loop training on its own RNG stream, so enabling it never shifts the
    shuffle/augmentation draws.
    """
    from repro.nn import set_read_noise

    rng = np.random.default_rng(cfg.seed)
    optimizer = _make_optimizer(model, cfg)
    loss_fn = CrossEntropyLoss()
    augment = GaussianNoiseAugment(cfg.augment_sigma, rng) \
        if cfg.augment_sigma > 0 else None
    if cfg.read_noise_sigma > 0:
        set_read_noise(model, cfg.read_noise_sigma,
                       rng=np.random.default_rng((cfg.seed, 0x5EED)),
                       layer_names=cfg.read_noise_layers)
    history: list[dict[str, float]] = []
    n = len(train_inputs)
    if cfg.early_stop_patience > 0 and val_inputs is None:
        raise ValueError("early stopping requires a validation set")
    best_val = -np.inf
    best_state: dict[str, np.ndarray] | None = None
    epochs_without_gain = 0
    stopped_epoch: int | None = None

    for epoch in range(cfg.epochs):
        model.train()
        order = rng.permutation(n)
        for start in range(0, n, cfg.batch_size):
            batch = order[start:start + cfg.batch_size]
            x = train_inputs[batch]
            if augment is not None:
                x = augment(x)
            logits = model(Tensor(x))
            loss = loss_fn(logits, train_labels[batch])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            clip_latent_weights(model, cfg.latent_clip)
        need_val = (cfg.track_history or cfg.early_stop_patience > 0) \
            and val_inputs is not None
        if need_val:
            topk = evaluate_topk(model, val_inputs, val_labels,
                                 cfg.eval_topk)
            if cfg.track_history:
                record = {"epoch": float(epoch + 1)}
                record.update({f"top{k}": v for k, v in topk.items()})
                history.append(record)
            if cfg.early_stop_patience > 0:
                val_acc = topk[min(cfg.eval_topk)]
                if val_acc > best_val + cfg.early_stop_min_delta:
                    best_val = val_acc
                    best_state = model.state_dict()
                    epochs_without_gain = 0
                else:
                    epochs_without_gain += 1
                    if epochs_without_gain >= cfg.early_stop_patience:
                        stopped_epoch = epoch + 1
                        break

    if best_state is not None:
        model.load_state_dict(best_state)
    if val_inputs is not None:
        final = evaluate_accuracy(model, val_inputs, val_labels)
    else:
        final = evaluate_accuracy(model, train_inputs, train_labels)
    return TrainResult(final_accuracy=final, history=history,
                       stopped_epoch=stopped_epoch)


def evaluate_compiled(plan, inputs: np.ndarray, labels: np.ndarray,
                      batch_size: int | None = None,
                      trials: int | None = None, seed: int = 0,
                      trial_chunk: int | None = None):
    """Top-1 accuracy of a compiled runtime plan (any backend).

    The deployment-side mirror of :func:`evaluate_accuracy`: the same
    batched protocol (64-sample batches unless ``batch_size`` is given),
    but running the folded/packed/programmed plan produced by
    :func:`repro.runtime.compile` instead of the float stack.

    With ``trials`` set, the plan's Monte-Carlo axis is exercised instead:
    ``trials`` noisy evaluations run trial-batched on deterministic child
    streams of ``seed`` (:meth:`~repro.runtime.CompiledModel.
    predict_trials`) and the per-trial accuracy vector ``(trials,)`` is
    returned — the distribution behind the paper's robustness claims.  On
    deterministic backends every trial coincides.  The trials path runs
    unbatched unless ``batch_size`` is given explicitly, matching
    ``predict_trials``: noisy results are reproducible per ``(seed,
    batch_size)`` pair, so no batching is imposed silently.
    """
    labels = np.asarray(labels)
    if trials is None:
        predictions = plan.predict(
            np.asarray(inputs),
            batch_size=64 if batch_size is None else batch_size)
        return float((predictions == labels).mean())
    predictions = plan.predict_trials(np.asarray(inputs), trials, seed=seed,
                                      batch_size=batch_size,
                                      trial_chunk=trial_chunk)
    return (predictions == labels[None]).mean(axis=1)


def backend_agreement(model: Module, inputs: np.ndarray,
                      backends=("reference", "packed"),
                      batch_size: int = 64, **compile_kwargs):
    """Compile ``model`` for every backend and compare predictions.

    Returns ``(predictions, agreement)``: per-backend predicted labels and
    each backend's agreement fraction with the first one.  The standing
    deployment contract (Eq. 3) is that ``reference`` and ``packed`` agree
    bit-for-bit and ideal RRAM matches both; this helper is how the tests
    and examples check it on real data (the CLI ``compile`` command keeps
    its own loop because it also times each compiled plan).
    """
    from repro.runtime import compile as compile_model

    inputs = np.asarray(inputs)
    predictions: dict[str, np.ndarray] = {}
    for backend in backends:
        plan = compile_model(model, backend=backend, **compile_kwargs)
        key, suffix = plan.backend.name, 2
        while key in predictions:       # two configs of the same substrate
            key = f"{plan.backend.name}#{suffix}"
            suffix += 1
        predictions[key] = plan.predict(inputs, batch_size)
    names = list(predictions)
    baseline = predictions[names[0]]
    agreement = {name: float((predictions[name] == baseline).mean())
                 for name in names}
    return predictions, agreement


def artifact_agreement(artifact, inputs: np.ndarray,
                       backends=("reference", "packed"),
                       batch_size: int = 64, front_end=None):
    """Reload a saved plan artifact on every backend and compare
    predictions — :func:`backend_agreement` for deployment artifacts.

    ``artifact`` is a path (or a loaded
    :class:`~repro.io.PlanArtifact`); no model is needed.  Returns the
    same ``(predictions, agreement)`` pair as :func:`backend_agreement`,
    with duplicate substrate names disambiguated the same way.  This is
    the reproduction path for tables computed from a shipped artifact:
    the accuracy numbers come from the file, not from a re-trained model.
    """
    from repro.io import load_compiled, load_plan, PlanArtifact

    if not isinstance(artifact, PlanArtifact):
        artifact = load_plan(artifact)
    inputs = np.asarray(inputs)
    predictions: dict[str, np.ndarray] = {}
    for backend in backends:
        plan = load_compiled(artifact, backend=backend,
                             front_end=front_end)
        key, suffix = plan.backend.name, 2
        while key in predictions:       # two configs of the same substrate
            key = f"{plan.backend.name}#{suffix}"
            suffix += 1
        predictions[key] = plan.predict(inputs, batch_size)
    names = list(predictions)
    baseline = predictions[names[0]]
    agreement = {name: float((predictions[name] == baseline).mean())
                 for name in names}
    return predictions, agreement


def cross_validate(model_factory: Callable[[np.random.Generator], Module],
                   dataset: ArrayDataset, cfg: TrainConfig, k: int = 5,
                   repeats: int = 1,
                   fit_hook: Callable[[Module, np.ndarray], None]
                   | None = None) -> CrossValResult:
    """K-fold cross-validation, repeated with fresh models.

    ``model_factory(rng)`` builds an untrained model; ``fit_hook(model,
    train_inputs)`` runs any data-dependent setup (e.g. the ECG model's
    input normalization) on the training split only — never on validation
    data.
    """
    accuracies = []
    for repeat in range(repeats):
        split_rng = np.random.default_rng(cfg.seed + 1000 * repeat)
        folds = stratified_kfold_indices(dataset.labels, k, split_rng)
        for fold, (train_idx, val_idx) in enumerate(folds):
            model_rng = np.random.default_rng(
                cfg.seed + 1000 * repeat + fold)
            model = model_factory(model_rng)
            train_x = dataset.inputs[train_idx]
            train_y = dataset.labels[train_idx]
            if fit_hook is not None:
                fit_hook(model, train_x)
            fold_cfg = TrainConfig(**{**cfg.__dict__,
                                      "seed": cfg.seed + 1000 * repeat + fold,
                                      "track_history": False})
            train_model(model, train_x, train_y, fold_cfg)
            accuracies.append(evaluate_accuracy(
                model, dataset.inputs[val_idx], dataset.labels[val_idx]))
    return CrossValResult(np.asarray(accuracies))
