"""Deterministic training recipes for the demo-geometry paper models.

Everything else in the deployment stack (compile, deploy, serve, sweep)
consumes *models*; this module is the canonical way to produce trained
ones.  Each recipe fixes the dataset geometry, the split, the model
geometry (matching :func:`repro.models.demo_model_and_inputs`, so a
trained checkpoint drops into every existing demo pathway) and the
hyper-parameters — one name, one reproducible training run:

* ``train_demo_model("eeg")`` — clean training;
* ``train_demo_model("eeg", noise_sigma=1.5)`` — hardware-in-the-loop
  training with the RRAM read-noise surrogate armed on every binary
  layer (:class:`~repro.experiments.TrainConfig.read_noise_sigma`);
* ``seeded_baseline("eeg")`` — the untrained control: same model, same
  batch-norm calibration protocol, zero gradient steps.  This is what
  every robustness table measured before training existed in-repo.

The validation split is the first fold of a seeded stratified 4-fold, so
"validation accuracy" means the same rows everywhere: the ``repro
train`` CLI, the ``trained_robustness`` sweep workload and
``benchmarks/bench_noise_training.py`` all compare on identical data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import (ECGConfig, EEGConfig, make_ecg_dataset,
                        make_eeg_dataset, stratified_kfold_indices)
from repro.experiments.runner import TrainConfig, TrainResult, train_model
from repro.models import BinarizationMode, ECGNet, EEGNet
from repro.nn.module import Module

__all__ = ["TrainingRecipe", "TRAINING_RECIPES", "TrainedDemo",
           "recipe_dataset", "build_recipe_model", "train_demo_model",
           "seeded_baseline"]


@dataclass(frozen=True)
class TrainingRecipe:
    """One named, fully deterministic training run."""

    name: str
    epochs: int
    batch_size: int
    lr: float
    augment_sigma: float
    early_stop_patience: int
    seed: int = 0
    folds: int = 4

    def config(self, *, epochs: int | None = None, seed: int | None = None,
               noise_sigma: float = 0.0) -> TrainConfig:
        # Noise is armed on the classifier layers only — the ones the
        # classifier-on-chip deployment actually reads through noisy
        # sense amplifiers (the conv front-end runs digitally).
        return TrainConfig(
            epochs=self.epochs if epochs is None else int(epochs),
            batch_size=self.batch_size, lr=self.lr,
            augment_sigma=self.augment_sigma,
            read_noise_sigma=float(noise_sigma),
            read_noise_layers=("fc1", "fc2"),
            seed=self.seed if seed is None else int(seed),
            track_history=True,
            early_stop_patience=self.early_stop_patience)


# Epoch counts sized for the reduced demo geometry (seconds per epoch on
# one core), with best-epoch restore via early stopping: binarized
# gradients are noisy, so the recipes over-provision epochs and let the
# patience window pick the best state.  The ECG run converges much more
# slowly than the EEG one (best epoch near 100), and read-noise training
# makes its validation curve noisier still — a 20-epoch patience window
# reproducibly stops noise-armed ECG runs ~70 epochs before their best
# state, so the ECG recipe carries a wider window.
TRAINING_RECIPES: dict[str, TrainingRecipe] = {
    "eeg": TrainingRecipe(name="eeg", epochs=60, batch_size=16, lr=2e-3,
                          augment_sigma=0.1, early_stop_patience=20),
    "ecg": TrainingRecipe(name="ecg", epochs=200, batch_size=16, lr=2e-3,
                          augment_sigma=0.05, early_stop_patience=40),
}


@dataclass
class TrainedDemo:
    """A recipe's outcome: the (trained or seeded) model plus the exact
    split it was evaluated on."""

    name: str
    model: Module
    result: TrainResult | None        # None for the seeded baseline
    train_inputs: np.ndarray
    train_labels: np.ndarray
    val_inputs: np.ndarray
    val_labels: np.ndarray
    noise_sigma: float = 0.0

    @property
    def val_accuracy(self) -> float:
        from repro.experiments.runner import evaluate_accuracy
        return evaluate_accuracy(self.model, self.val_inputs,
                                 self.val_labels)


def recipe_dataset(name: str, seed: int | None = None):
    """The recipe's dataset and its train/validation row indices.

    Returns ``(inputs, labels, train_idx, val_idx)``; the split is the
    first fold of a seeded stratified ``folds``-fold, deterministic per
    ``(name, seed)``.
    """
    recipe = _recipe(name)
    seed = recipe.seed if seed is None else int(seed)
    if name == "eeg":
        ds = make_eeg_dataset(EEGConfig(n_trials=240, n_channels=16,
                                        n_samples=240, seed=seed))
    else:
        ds = make_ecg_dataset(ECGConfig(n_trials=240, n_samples=300,
                                        seed=seed))
    folds = stratified_kfold_indices(ds.labels, recipe.folds,
                                     np.random.default_rng(seed + 1))
    train_idx, val_idx = folds[0]
    return ds.inputs, ds.labels, train_idx, val_idx


def build_recipe_model(name: str, mode: BinarizationMode | str,
                       rng: np.random.Generator) -> Module:
    """The recipe's model at demo geometry (same shapes as
    :func:`repro.models.demo_model_and_inputs`, so trained checkpoints
    feed every existing compile/deploy/serve pathway)."""
    _recipe(name)
    mode = BinarizationMode(mode)
    if name == "eeg":
        return EEGNet(mode=mode, n_channels=16, n_samples=240,
                      base_filters=8, hidden_units=32, rng=rng)
    return ECGNet(mode=mode, n_samples=300, base_filters=8,
                  conv_keep_prob=1.0, classifier_keep_prob=1.0, rng=rng)


def _recipe(name: str) -> TrainingRecipe:
    if name not in TRAINING_RECIPES:
        raise ValueError(f"no training recipe for {name!r}; "
                         f"choose one of {sorted(TRAINING_RECIPES)}")
    return TRAINING_RECIPES[name]


def _prepare(name: str, mode, seed: int | None):
    recipe = _recipe(name)
    seed = recipe.seed if seed is None else int(seed)
    inputs, labels, train_idx, val_idx = recipe_dataset(name, seed)
    model = build_recipe_model(name, mode, np.random.default_rng(seed))
    if hasattr(model, "fit_input_norm"):
        model.fit_input_norm(inputs[train_idx])    # training rows only
    return model, inputs, labels, train_idx, val_idx


def train_demo_model(name: str,
                     mode: BinarizationMode | str = "full_binary",
                     *, noise_sigma: float = 0.0,
                     epochs: int | None = None,
                     seed: int | None = None) -> TrainedDemo:
    """Run one recipe end to end and return the trained model + split.

    ``noise_sigma > 0`` arms the RRAM read-noise surrogate during
    training (see :mod:`repro.nn.noise`); ``epochs``/``seed`` override
    the recipe for smokes and sweeps.  Early stopping restores the best
    validation state, so the returned model is the best epoch's, not the
    last one's.
    """
    recipe = _recipe(name)
    model, inputs, labels, train_idx, val_idx = _prepare(name, mode, seed)
    cfg = recipe.config(epochs=epochs, seed=seed, noise_sigma=noise_sigma)
    result = train_model(model, inputs[train_idx], labels[train_idx], cfg,
                         val_inputs=inputs[val_idx],
                         val_labels=labels[val_idx])
    model.eval()
    return TrainedDemo(name=name, model=model, result=result,
                       train_inputs=inputs[train_idx],
                       train_labels=labels[train_idx],
                       val_inputs=inputs[val_idx],
                       val_labels=labels[val_idx],
                       noise_sigma=float(noise_sigma))


def seeded_baseline(name: str,
                    mode: BinarizationMode | str = "full_binary",
                    *, seed: int | None = None) -> TrainedDemo:
    """The untrained control on the recipe's exact split.

    Identical construction and batch-norm calibration to a training run
    (statistics from forward passes over the training rows), but zero
    gradient steps — the "seeded weights" every pre-training robustness
    table silently measured.
    """
    from repro.tensor import Tensor, no_grad

    model, inputs, labels, train_idx, val_idx = _prepare(name, mode, seed)
    model.train()
    with no_grad():
        for start in range(0, len(train_idx), 8):
            model(Tensor(inputs[train_idx[start:start + 8]]))
    model.eval()
    return TrainedDemo(name=name, model=model, result=None,
                       train_inputs=inputs[train_idx],
                       train_labels=labels[train_idx],
                       val_inputs=inputs[val_idx],
                       val_labels=labels[val_idx])
