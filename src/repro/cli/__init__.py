"""Command-line interface: ``python -m repro <command>``.

Exposes the analytic experiments (the ones that run in seconds) directly
from the shell, and a registry describing every table/figure harness so a
user can discover what the repository reproduces without reading the
source:

* ``python -m repro list`` — every experiment with its paper artefact;
* ``python -m repro info FIG4`` — protocol, modules and bench target;
* ``python -m repro run FIG4`` — run an analytic experiment now;
* ``python -m repro memory`` — the Table IV memory report;
* ``python -m repro energy`` — in-memory vs digital energy accounting.

Training-based experiments (Table III, Fig. 7, Fig. 8) take minutes and run
through pytest: ``run`` prints the exact command instead of silently
launching a long job.
"""

from repro.cli.main import main
from repro.cli.registry import EXPERIMENTS, ExperimentInfo

__all__ = ["main", "EXPERIMENTS", "ExperimentInfo"]
