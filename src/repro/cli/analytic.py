"""The analytic experiments the CLI can run directly (seconds each).

Each runner returns the report text; :mod:`repro.cli.main` prints it.
Training-scale experiments live in ``benchmarks/`` and are not duplicated
here.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import model_memory
from repro.experiments import render_table
from repro.models import (BinarizationMode, ECGNet, EEGNet, MobileNetConfig,
                          MobileNetV1)
from repro.rram import (DeviceParameters, EnergyModel, PeripheryModel,
                        RetentionModel, analytic_ber_1t1r, analytic_ber_2t2r,
                        retention_ber_1t1r, retention_ber_2t2r)
from repro.rram.analog import AnalogConfig, AnalogCrossbar
from repro.viz import line_plot

__all__ = ["run_fig4", "run_table1", "run_table2", "run_table4",
           "run_energy", "run_retention", "run_analog"]


def run_fig4(jobs: int = 1) -> str:
    """Closed-form Fig. 4 curves (the Monte-Carlo version is the bench).

    With ``jobs != 1`` a Monte-Carlo spot check of the closed forms runs
    on a process pool (array-level programming + noisy read-back of
    16K cells per point) and is appended to the report.
    """
    params = DeviceParameters()
    cycles = np.geomspace(1e8, 7e8, 12)
    ber_bl = analytic_ber_1t1r(params, cycles)
    ber_blb = analytic_ber_1t1r(params, cycles,
                                mismatch=params.device_mismatch)
    ber_2t2r = analytic_ber_2t2r(params, cycles)
    plot = line_plot(
        {"1T1R BL": (cycles, ber_bl),
         "1T1R BLb": (cycles, ber_blb),
         "2T2R": (cycles, ber_2t2r)},
        title="Fig. 4 — bit error rate vs programming cycles (analytic)",
        x_log=True, y_log=True, x_label="cycles", y_label="error rate")
    ratio = ber_bl / ber_2t2r
    text = (plot + "\n\n"
            f"1T1R/2T2R separation: {ratio.min():.0f}x .. {ratio.max():.0f}x"
            "\nPaper: 2T2R approximately two orders of magnitude below 1T1R."
            "\nMonte-Carlo version: pytest "
            "benchmarks/bench_fig4_bit_error_rate.py --benchmark-only -s")
    if jobs == 1:
        return text

    from repro.experiments import map_parallel
    from repro.experiments.workloads import ber_point
    spots = [{"cycles": int(c), "mode": mode, "n_cells": 16384, "seed": 0}
             for mode in ("1T1R", "2T2R")
             for c in np.geomspace(1e8, 7e8, 4)]
    measured = map_parallel(ber_point, spots, jobs=jobs)
    lines = [f"\nMonte-Carlo spot check ({jobs} workers, "
             "16,384 cells/point):"]
    analytic_of = {"1T1R": analytic_ber_1t1r, "2T2R": analytic_ber_2t2r}
    for spot, result in zip(spots, measured):
        closed = float(analytic_of[spot["mode"]](params, spot["cycles"]))
        lines.append(f"  {spot['mode']} @ {spot['cycles']:.1e} cycles: "
                     f"measured {result['ber']:.2e} "
                     f"(analytic {closed:.2e})")
    return text + "\n" + "\n".join(lines)


def _architecture_table(title: str, model) -> str:
    rows = [s.row() for s in model.layer_summaries()]
    table = render_table(title,
                         ["Layer", "Kernels", "Padding", "Output shape",
                          "Params"], rows)
    return (table +
            f"\n\nTotal parameters: {model.num_parameters():,}")


def run_table1() -> str:
    model = EEGNet(rng=np.random.default_rng(0))
    return _architecture_table(
        "Table I — EEG classification network architecture", model)


def run_table2() -> str:
    model = ECGNet(rng=np.random.default_rng(0))
    return _architecture_table(
        "Table II — ECG classification network architecture", model)


def run_table4() -> str:
    rng = np.random.default_rng(0)
    eeg = model_memory("EEG", EEGNet(rng=rng))
    ecg = model_memory("ECG", ECGNet(rng=rng))
    mobilenet_bin = MobileNetV1(MobileNetConfig.paper(),
                                mode=BinarizationMode.BINARY_CLASSIFIER,
                                rng=rng)
    mobilenet = model_memory(
        "ImageNet",
        MobileNetV1(MobileNetConfig.paper(), mode=BinarizationMode.REAL,
                    rng=rng),
        binary_classifier_params=mobilenet_bin.classifier_parameters())
    table = render_table(
        "Table IV — model memory usage and classifier-binarization savings",
        ["Model", "Total params", "Classifier params",
         "Model size 32-bit / 8-bit", "Bin classif. saving 32-bit / 8-bit"],
        [b.table_row() for b in (eeg, ecg, mobilenet)])
    return (table +
            "\n\nPaper rows: EEG 64%/57.8%, ECG 84%/75.8%, "
            "ImageNet 20%/7.3%.")


def run_energy() -> str:
    model = EnergyModel()
    # The paper's EEG classifier: 2520 -> 80 -> 2.
    shapes = [(80, 2520), (2, 80)]
    in_memory = model.in_memory_inference(shapes)
    sram = model.digital_inference(shapes, weight_memory="sram")
    dram = model.digital_inference(shapes, weight_memory="dram")
    rows = [
        ("in-memory 2T2R (Fig. 5)", *in_memory.row()),
        ("digital, SRAM weights + SECDED", *sram.row()),
        ("digital, DRAM weights + SECDED", *dram.row()),
    ]
    table = render_table(
        "Energy per EEG-classifier inference (pJ) and area (mm^2)",
        ["Datapath", "Sense", "Compute", "Movement", "ECC", "Total",
         "Area"], rows)
    advantage = sram.total_pj / in_memory.total_pj
    return (table +
            f"\n\nIn-memory advantage vs SRAM digital: {advantage:.1f}x "
            "(energy; weights never move).")


def run_retention() -> str:
    params = DeviceParameters()
    model = RetentionModel()
    years = np.geomspace(0.01, 10.0, 10)
    hours = years * 365.25 * 24
    ber1 = retention_ber_1t1r(params, model, hours)
    ber2 = retention_ber_2t2r(params, model, hours)
    floor = np.finfo(float).tiny
    plot = line_plot(
        {"1T1R": (years, np.maximum(ber1, floor)),
         "2T2R": (years, np.maximum(ber2, floor * 10))},
        title="Retention — bit error rate vs time since programming",
        x_log=True, y_log=True, x_label="years", y_label="error rate")
    return (plot + "\n\nDifferential storage also suppresses retention "
            "drift: both devices of a pair relax together.")


def run_analog() -> str:
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(32, 128))
    x = rng.normal(size=(64, 128))
    rows = []
    periphery = PeripheryModel()
    energy_model = EnergyModel()
    for adc_bits in (4, 6, 8, 10, 12):
        cfg = AnalogConfig(adc_bits=adc_bits, dac_bits=8,
                           programming_sigma=0.05, read_noise_sigma=0.01)
        xbar = AnalogCrossbar(weights, cfg, np.random.default_rng(1))
        err = xbar.relative_error(weights, x)
        energy = periphery.matvec_energy_pj(128, 32, 8, adc_bits)
        area = periphery.matvec_area_um2(128, 32, 8, adc_bits,
                                         adcs_shared=8)
        rows.append((str(adc_bits), f"{err:.3f}", f"{energy:.0f}",
                     f"{area:.0f}"))
    digital_fj = 128 * 32 * energy_model.xnor_pcsa_sense_fj
    table = render_table(
        "Analog crossbar (128-in, 32-out): matvec error and converter cost "
        "vs ADC resolution",
        ["ADC bits", "rel. error", "converter energy (pJ)",
         "converter area (um^2)"], rows)
    return (table +
            f"\n\nSame matvec on the binary 2T2R fabric: "
            f"{digital_fj / 1000:.1f} pJ of PCSA sensing, no converters."
            "\nPaper §II-A: analog coding needs only two devices per weight "
            "but pays a large ADC/DAC periphery.")
