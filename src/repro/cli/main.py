"""Argument parsing and dispatch for ``python -m repro``."""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__
from repro.cli import analytic
from repro.cli.registry import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'In-Memory Resistive RAM "
                     "Implementation of Binarized Neural Networks for "
                     "Medical Applications' (DATE 2020)."))
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="catalogue of reproduced tables and figures")

    info = sub.add_parser("info", help="details of one experiment")
    info.add_argument("id", help="experiment id, e.g. FIG4 (see 'list')")

    run = sub.add_parser("run", help="run an analytic experiment now")
    run.add_argument("id", help="experiment id, e.g. FIG4 (see 'list')")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes for runners that sweep "
                          "(forwarded when the runner supports it)")

    sub.add_parser("memory", help="Table IV memory report (alias: run TAB4)")
    sub.add_parser("energy",
                   help="in-memory vs digital energy (alias: run XTRA4)")
    compile_cmd = sub.add_parser(
        "compile",
        help="compile a paper model through the unified runtime and "
             "cross-check every backend")
    compile_cmd.add_argument("model", nargs="+",
                             choices=["eeg", "ecg", "mobilenet"],
                             help="which architecture(s) to compile "
                                  "(reduced geometry, random weights); "
                                  "several names build a multi-model "
                                  "bundle with --save-bundle")
    compile_cmd.add_argument("--backend", default="all",
                             help="backend name, or 'all' (default) for "
                                  "reference/packed/ideal-rram/sharded")
    compile_cmd.add_argument("--macros", default="32x32",
                             help="macro geometry ROWSxCOLS for the "
                                  "sharded backend (default 32x32); each "
                                  "folded layer is split across chips of "
                                  "this size")
    compile_cmd.add_argument("--mode", default="binary_classifier",
                             choices=["binary_classifier", "full_binary"],
                             help="binarization mode (full_binary lowers "
                                  "the EEG/ECG conv stack onto the "
                                  "backend)")
    compile_cmd.add_argument("--jobs", type=int, default=1,
                             help="evaluate backends in N worker "
                                  "processes (1 = in-process)")
    compile_cmd.add_argument("--save", default=None, metavar="PATH",
                             help="write the compiled plan as a "
                                  "deployment artifact (.npz) that "
                                  "'deploy' reloads without the model")
    compile_cmd.add_argument("--save-bundle", default=None, metavar="PATH",
                             help="write ALL compiled models as one "
                                  "multi-tenant bundle artifact (.npz) "
                                  "that 'serve' hosts behind a single "
                                  "daemon and 'deploy' packs onto one "
                                  "macro pool")
    compile_cmd.add_argument("--overwrite", action="store_true",
                             help="allow --save/--save-bundle to replace "
                                  "an existing artifact file")
    deploy_cmd = sub.add_parser(
        "deploy",
        help="load a saved plan artifact (no model needed) and run "
             "inference on every backend, reporting agreement")
    deploy_cmd.add_argument("artifact",
                            help="plan artifact written by 'compile "
                                 "--save' or repro.io.save_plan (legacy "
                                 "folded-classifier files are converted "
                                 "on the fly)")
    deploy_cmd.add_argument("--backend", default="all",
                            help="backend name, or 'all' (default) for "
                                 "reference/packed/ideal-rram/sharded")
    deploy_cmd.add_argument("--macros", default="32x32",
                            help="macro geometry ROWSxCOLS for the "
                                 "sharded backend (default 32x32)")
    deploy_cmd.add_argument("--batch", type=int, default=32,
                            help="synthetic evaluation batch size "
                                 "(default 32)")
    deploy_cmd.add_argument("--seed", type=int, default=0,
                            help="seed for the synthetic evaluation "
                                 "inputs (default 0)")
    deploy_cmd.add_argument("--ecc", default="none",
                            choices=["none", "secded", "rate-half"],
                            help="protect the rram backend's weight "
                                 "store with this Hamming code "
                                 "(default none)")
    deploy_cmd.add_argument("--years", type=float, default=0.0,
                            help="age the programmed weights by this "
                                 "many years of storage before "
                                 "evaluating (default 0 = fresh)")
    deploy_cmd.add_argument("--temp", type=float, default=37.0,
                            help="storage temperature in deg C for "
                                 "--years (default 37, body "
                                 "temperature)")
    deploy_cmd.add_argument("--kill-macro", type=int, action="append",
                            default=None, metavar="INDEX",
                            help="mark this chip-global macro index dead "
                                 "on the sharded backend (repeatable); "
                                 "its shards remap onto spares")
    deploy_cmd.add_argument("--spares", default="auto",
                            help="spare macros per layer for dead-macro "
                                 "remapping: 'auto' or an int "
                                 "(default auto)")
    deploy_cmd.add_argument("--repeat", type=int, default=3,
                            help="timed prediction repeats per backend; "
                                 "the table reports the median (p50) "
                                 "instead of a single-shot time "
                                 "(default 3)")
    serve_cmd = sub.add_parser(
        "serve",
        help="run the always-on inference daemon: load a plan artifact "
             "once and serve concurrent requests over HTTP with "
             "micro-batching onto the packed fast path")
    serve_cmd.add_argument("artifact",
                           help="self-contained plan artifact written by "
                                "'compile --save', or a multi-model "
                                "bundle from 'compile --save-bundle' "
                                "(auto-detected; the daemon loads it "
                                "once; no model needed)")
    serve_cmd.add_argument("--bundle", action="store_true",
                           help="require the artifact to be a "
                                "multi-model bundle (bundles are "
                                "auto-detected either way; this makes "
                                "scripts fail loudly on the wrong file)")
    serve_cmd.add_argument("--backend", default="packed",
                           help="execution backend (default packed; "
                                "rram/sharded run their noise-free fast "
                                "paths — noisy configs are not servable)")
    serve_cmd.add_argument("--macros", default="32x32",
                           help="macro geometry ROWSxCOLS for the "
                                "sharded backend (default 32x32)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8373,
                           help="TCP port (default 8373; 0 picks a free "
                                "one and prints it)")
    serve_cmd.add_argument("--max-batch", type=int, default=256,
                           help="rows per coalesced dispatch; a fuller "
                                "queue flushes early (default 256)")
    serve_cmd.add_argument("--batch-window", type=float, default=200.0,
                           help="micro-batch window in microseconds: how "
                                "long the oldest request may wait for "
                                "co-travellers before a flush (default "
                                "200; 0 = flush immediately)")
    serve_cmd.add_argument("--max-queue", type=int, default=1024,
                           help="admission queue depth in rows; requests "
                                "past it are rejected with HTTP 429 "
                                "(default 1024)")
    serve_cmd.add_argument("--pad", action="store_true",
                           help="zero-pad every flush to exactly "
                                "--max-batch rows (fixed dispatch shape)")
    serve_cmd.add_argument("--request-timeout", type=float, default=30.0,
                           help="seconds a connection waits for its "
                                "response before 504 (default 30)")
    train_cmd = sub.add_parser(
        "train",
        help="train a demo-geometry paper model (optionally with the "
             "RRAM read-noise model in the loop), checkpoint it, and "
             "compile it to a plan artifact for deploy/serve/sweep")
    train_cmd.add_argument("model", choices=["eeg", "ecg"],
                           help="which recipe to run (synthetic dataset "
                                "windows at demo geometry; deterministic "
                                "per seed)")
    train_cmd.add_argument("--mode", default="full_binary",
                           choices=["binary_classifier", "full_binary"],
                           help="binarization mode (default full_binary: "
                                "the compiled artifact is self-contained "
                                "and 'deploy'/'serve' need no model)")
    train_cmd.add_argument("--noise-sigma", type=float, default=0.0,
                           help="train with the RRAM read-noise surrogate "
                                "armed at this sense-offset sigma "
                                "(hardware-in-the-loop; 0 = clean "
                                "training)")
    train_cmd.add_argument("--epochs", type=int, default=None,
                           help="override the recipe's epoch budget")
    train_cmd.add_argument("--seed", type=int, default=None,
                           help="override the recipe's seed (dataset, "
                                "split, init and shuffling all follow)")
    train_cmd.add_argument("--checkpoint", default=None, metavar="PATH",
                           help="write the trained state_dict as a "
                                "checkpoint (.npz) reloadable with "
                                "repro.io.load_model")
    train_cmd.add_argument("--save", default=None, metavar="PATH",
                           help="compile the trained model and write the "
                                "plan artifact (.npz) that 'deploy' and "
                                "'serve' reload without the model")
    train_cmd.add_argument("--overwrite", action="store_true",
                           help="allow --checkpoint/--save to replace "
                                "existing files")
    from repro.experiments.workloads import SWEEP_WORKLOADS
    sweep_cmd = sub.add_parser(
        "sweep",
        help="run a persisted, resumable parameter sweep (optionally on "
             "a process pool)")
    sweep_cmd.add_argument("workload",
                           choices=sorted(SWEEP_WORKLOADS),
                           help="; ".join(
                               f"{name}: {SWEEP_WORKLOADS[name].description}"
                               for name in sorted(SWEEP_WORKLOADS)))
    sweep_cmd.add_argument("--jobs", type=int, default=1,
                           help="worker processes (1 = serial)")
    sweep_cmd.add_argument("--trials", type=int, default=1,
                           help="Monte-Carlo read trials per point, "
                                "evaluated trial-batched on deterministic "
                                "per-trial RNG streams (default 1)")
    sweep_cmd.add_argument("--trial-chunk", type=int, default=None,
                           help="trials per vectorized window (bounds "
                                "peak memory; never changes results)")
    sweep_cmd.add_argument("--cache-stats", action="store_true",
                           help="report the programmed-plan cache "
                                "hit/miss counters after the sweep "
                                "(per-process; with --jobs > 1 workers "
                                "keep their own caches)")
    sweep_cmd.add_argument("--out", default=None,
                           help="JSONL result file (default "
                                "benchmarks/results/sweep_<workload>"
                                ".jsonl); an existing file resumes")
    floorplan = sub.add_parser(
        "floorplan",
        help="map a paper model's classifier onto RRAM macros")
    floorplan.add_argument("model", choices=["eeg", "ecg", "mobilenet"],
                           help="which architecture's classifier to plan")
    floorplan.add_argument("--macro", default="32x32",
                           help="macro geometry ROWSxCOLS (default 32x32)")
    return parser


def _canonical_id(raw: str) -> str:
    candidate = raw.strip().upper().replace(".", "").replace(" ", "")
    aliases = {
        "FIGURE4": "FIG4", "TABLE1": "TAB1", "TABLE2": "TAB2",
        "TABLE3": "TAB3", "TABLE4": "TAB4", "FIGURE7": "FIG7",
        "FIGURE8": "FIG8",
    }
    return aliases.get(candidate, candidate)


def _sort_key(exp_id: str) -> tuple[int, int]:
    """Paper artefacts in paper order, then ablations numerically."""
    import re
    match = re.fullmatch(r"([A-Z]+)(\d+)", exp_id)
    prefix, number = match.group(1), int(match.group(2))
    prefix_rank = {"FIG": 0, "TAB": 0, "XTRA": 1}.get(prefix, 2)
    return (prefix_rank, number)


def _cmd_list() -> str:
    width = max(len(i) for i in EXPERIMENTS)
    lines = ["Reproduced artefacts ('run <id>' for analytic ones, the "
             "listed bench for training ones):", ""]
    tags = {"analytic": "run now ", "script": "python  "}
    for exp_id in sorted(EXPERIMENTS, key=_sort_key):
        info = EXPERIMENTS[exp_id]
        tag = tags.get(info.kind, "pytest  ")
        lines.append(f"  {info.id.ljust(width)}  [{tag}]  {info.artefact}")
    return "\n".join(lines)


def _cmd_info(exp_id: str) -> str:
    info = EXPERIMENTS.get(_canonical_id(exp_id))
    if info is None:
        raise SystemExit(
            f"unknown experiment {exp_id!r}; see 'python -m repro list'")
    lines = [info.artefact, "=" * len(info.artefact), info.description, ""]
    lines.append(f"modules : {', '.join(info.modules)}")
    if info.kind == "script":
        lines.append(f"run now : python {info.bench} [--smoke]")
    else:
        lines.append(f"bench   : pytest {info.bench} --benchmark-only -s")
    if info.kind == "analytic":
        lines.append(f"run now : python -m repro run {info.id}")
    return "\n".join(lines)


def _cmd_run(exp_id: str, jobs: int = 1) -> str:
    info = EXPERIMENTS.get(_canonical_id(exp_id))
    if info is None:
        raise SystemExit(
            f"unknown experiment {exp_id!r}; see 'python -m repro list'")
    if info.kind == "script":
        raise SystemExit(
            f"{info.id} is a standalone benchmark script; run it with:\n"
            f"  python {info.bench} [--smoke]")
    if info.kind != "analytic":
        raise SystemExit(
            f"{info.id} is a training experiment; run it with:\n"
            f"  pytest {info.bench} --benchmark-only -s")
    runner = getattr(analytic, info.runner)
    import inspect
    if "jobs" in inspect.signature(runner).parameters:
        return runner(jobs=jobs)
    text = runner()
    if jobs != 1:
        text += f"\n\n(--jobs ignored: {info.id} is closed-form analytic)"
    return text


def _demo_model_and_inputs(model_name: str, mode_name: str):
    """Reduced paper model + calibration inputs, deterministic per name
    (:func:`repro.models.demo_model_and_inputs`, shared with the golden
    fixture tooling); unsupported combinations exit instead of raising."""
    from repro.models import demo_model_and_inputs

    try:
        return demo_model_and_inputs(model_name, mode_name)
    except ValueError as error:
        raise SystemExit(str(error))


def _parse_macro(spec: str):
    """``ROWSxCOLS`` -> :class:`~repro.rram.MacroGeometry` (or exit)."""
    from repro.rram import MacroGeometry

    try:
        rows, cols = (int(part) for part in spec.lower().split("x"))
    except ValueError:
        raise SystemExit(f"macro geometry must look like 32x32, "
                         f"got {spec!r}")
    try:
        return MacroGeometry(rows, cols)
    except ValueError as error:       # well-formed spec, invalid value
        raise SystemExit(str(error))


def _evaluate_backend(model, inputs, spec: str,
                      macro_spec: str = "32x32") -> dict:
    """Compile one backend against a built model and time a prediction."""
    import time

    from repro.rram import AcceleratorConfig
    from repro.runtime import RRAMBackend, ShardedRRAMBackend, compile

    if spec == "ideal-rram":
        backend = RRAMBackend(AcceleratorConfig(ideal=True))
    elif spec == "sharded":
        backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                     macro=_parse_macro(macro_spec))
    else:
        backend = spec
    plan = compile(model, backend=backend)
    t0 = time.perf_counter()
    predicted = plan.predict(inputs)
    elapsed = (time.perf_counter() - t0) * 1e3
    result = {"backend": plan.backend.name, "predicted": predicted,
              "ms": elapsed, "summary": plan.summary()}
    if plan.placements:
        result["macro_report"] = plan.floorplan().macro_report()
    return result


def _evaluate_backend_point(model_name: str, mode_name: str, spec: str,
                            macro_spec: str = "32x32") -> dict:
    """Pool worker: rebuild the deterministic demo model in this process
    and evaluate one backend on it."""
    model, inputs = _demo_model_and_inputs(model_name, mode_name)
    return _evaluate_backend(model, inputs, spec, macro_spec)


def _cmd_compile(model_names: list[str], backend_spec: str,
                 mode_name: str, jobs: int = 1, macro_spec: str = "32x32",
                 save: str | None = None, overwrite: bool = False,
                 save_bundle: str | None = None) -> str:
    """Build reduced paper model(s), compile each for every requested
    backend, and report plan structure, prediction agreement, and latency.

    With ``--jobs N`` the backends are compiled and evaluated in worker
    processes (each rebuilds the deterministic demo model); with 1 they
    run in-process, serially.  The ``sharded`` backend additionally
    reports its per-macro shard map (fill and scan energy).  ``--save``
    additionally writes one plan as a deployment artifact the ``deploy``
    command reloads without the model; ``--save-bundle`` writes every
    named model into one multi-tenant bundle for ``serve`` / ``deploy``.
    """
    from repro.experiments import map_parallel
    from repro.runtime import available_backends

    _parse_macro(macro_spec)    # reject a bad --macros before any work
    if backend_spec == "all":
        specs = ["reference", "packed", "ideal-rram", "sharded"]
    elif backend_spec in available_backends():
        specs = [backend_spec]
    else:
        raise SystemExit(
            f"unknown backend {backend_spec!r}; registered: "
            f"{', '.join(available_backends())} (or 'all')")
    if len(set(model_names)) != len(model_names):
        raise SystemExit(f"duplicate model names: {model_names}")
    if save is not None and len(model_names) > 1:
        raise SystemExit("--save writes a single-plan artifact; use "
                         "--save-bundle for several models")

    lines: list[str] = []
    models: dict[str, object] = {}
    for model_name in model_names:
        model = inputs = None
        if jobs <= 1:
            # In-process: build and calibrate each demo model once.
            model, inputs = _demo_model_and_inputs(model_name, mode_name)
            results = [_evaluate_backend(model, inputs, spec, macro_spec)
                       for spec in specs]
        else:
            results = map_parallel(
                _evaluate_backend_point,
                [{"model_name": model_name, "mode_name": mode_name,
                  "spec": spec, "macro_spec": macro_spec}
                 for spec in specs],
                jobs=jobs)
        models[model_name] = model      # None when evaluated in workers

        if lines:
            lines.append("")
        lines += [results[0]["summary"], ""]
        lines.append(f"{'backend':<12} {'agreement':>10} {'ms/batch':>10}")
        baseline = results[0]["predicted"]
        for result in results:
            agreement = float((result["predicted"] == baseline).mean())
            lines.append(f"{result['backend']:<12} "
                         f"{agreement:>9.1%} "
                         f"{result['ms']:>10.2f}")
        lines.append("")
        lines.append("agreement is relative to the first backend; the "
                     "Eq. 3 contract is 100% for\nreference/packed, "
                     "ideal RRAM and the sharded multi-macro backend.")
        for result in results:
            if "macro_report" in result:
                lines += ["", result["macro_report"]]

    if save is not None or save_bundle is not None:
        from repro.runtime import compile as compile_model

        plans = {}
        for model_name in model_names:
            model = models[model_name]
            if model is None:
                model, _ = _demo_model_and_inputs(model_name, mode_name)
            plans[model_name] = compile_model(model, backend="reference")
    if save is not None:
        from repro.io import load_plan, save_plan

        try:
            path = save_plan(next(iter(plans.values())), save,
                             overwrite=overwrite,
                             allow_external_front_end=True)
        except FileExistsError as error:
            raise SystemExit(f"{error} (or pass --overwrite)")
        artifact = load_plan(path)
        status = "self-contained" if artifact.self_contained else \
            "front-end stays off-artifact (compile --mode full_binary " \
            "for a self-contained one)"
        lines += ["", f"plan artifact -> {path} "
                      f"({path.stat().st_size / 1024:.0f} KB, "
                      f"{status})",
                  "reload it with: python -m repro deploy "
                  f"{path}"]
    if save_bundle is not None:
        from repro.io import load_bundle
        from repro.io import save_bundle as save_bundle_fn

        try:
            path = save_bundle_fn(plans, save_bundle, overwrite=overwrite,
                                  allow_external_front_end=True)
        except FileExistsError as error:
            raise SystemExit(f"{error} (or pass --overwrite)")
        bundle = load_bundle(path)
        lines += ["", f"bundle artifact -> {path} "
                      f"({path.stat().st_size / 1024:.0f} KB, "
                      f"{len(bundle)} model(s): "
                      f"{', '.join(bundle.names)})",
                  "serve all of them behind one daemon with: "
                  f"python -m repro serve {path}"]
    return "\n".join(lines)


def _cmd_deploy(artifact_path: str, backend_spec: str = "all",
                macro_spec: str = "32x32", batch: int = 32,
                seed: int = 0, ecc: str = "none", years: float = 0.0,
                temp: float = 37.0, kill_macros: list[int] | None = None,
                spares: str = "auto", repeat: int = 3) -> str:
    """Load a plan artifact — no model, no training stack — rebind it to
    each requested backend and cross-check predictions on synthetic
    inputs of the artifact's recorded geometry.

    The reliability flags deploy the *same artifact* onto a degraded
    substrate: ``--years/--temp`` age the programmed weights through the
    retention model, ``--ecc`` puts the rram backend's store behind a
    Hamming code, and ``--kill-macro`` marks macros dead on the sharded
    backend (remapped onto spares instead of failing)."""
    import pathlib
    import time

    import numpy as np

    from repro.io import load_plan, load_compiled
    from repro.rram import AcceleratorConfig, FaultMap, LifetimeConfig
    from repro.runtime import (PlanSerializationError, RRAMBackend,
                               ShardedRRAMBackend, available_backends)

    macro = _parse_macro(macro_spec)
    lifetime = LifetimeConfig.years(years, temp) if years > 0 else None
    fault_map = FaultMap(dead_macros=tuple(kill_macros)) \
        if kill_macros else None
    if spares != "auto":
        try:
            spares = int(spares)
        except ValueError:
            raise SystemExit(
                f"--spares must be 'auto' or an int, got {spares!r}")
    if not pathlib.Path(artifact_path).exists():
        raise SystemExit(f"no artifact at {artifact_path!r}; write one "
                         "with 'compile --save' first")
    from repro.io import load_bundle
    bundle = load_bundle(artifact_path)
    if len(bundle) > 1:
        return _cmd_deploy_bundle(bundle, backend_spec, macro, batch,
                                  seed, ecc, lifetime, fault_map, spares,
                                  repeat)
    artifact = load_plan(artifact_path)
    if not artifact.self_contained:
        raise SystemExit(
            f"{artifact_path} is not self-contained (its front-end stays "
            "with the model); re-save from a lowered plan, e.g. "
            "'compile eeg --mode full_binary --save ...'")
    shape = artifact.input_shape
    if shape is None:
        raise SystemExit(f"{artifact_path} records no input geometry; "
                         "cannot generate evaluation inputs")
    if artifact.ops[0]["op"] == "bits":
        inputs = np.random.default_rng(seed).integers(
            0, 2, size=(batch,) + shape).astype(np.uint8)
    else:
        inputs = np.random.default_rng(seed).standard_normal(
            (batch,) + shape)

    if backend_spec == "all":
        specs = ["reference", "packed", "ideal-rram", "sharded"]
    elif backend_spec in available_backends():
        specs = [backend_spec]
    else:
        raise SystemExit(
            f"unknown backend {backend_spec!r}; registered: "
            f"{', '.join(available_backends())} (or 'all')")

    lines = [artifact.describe(), "",
             f"synthetic inputs: {inputs.shape} (seed {seed})", "",
             f"{'backend':<12} {'agreement':>10} {'ms/batch':>10}"]
    baseline = None
    reports = []
    for spec in specs:
        if spec == "ideal-rram":
            backend = RRAMBackend(AcceleratorConfig(ideal=True),
                                  ecc=None if ecc == "none" else ecc,
                                  lifetime=lifetime)
        elif spec == "rram" and (ecc != "none" or lifetime is not None):
            # The registered name builds a bare backend; reliability flags
            # need a configured instance.
            backend = RRAMBackend(ecc=None if ecc == "none" else ecc,
                                  lifetime=lifetime)
        elif spec == "sharded":
            backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                         macro=macro, lifetime=lifetime,
                                         fault_map=fault_map,
                                         spares=spares)
        else:
            backend = spec
        try:
            plan = load_compiled(artifact, backend=backend)
        except PlanSerializationError as error:
            raise SystemExit(str(error))
        # Timed repeats feed the shared latency helper: the table shows
        # the median, not a single (warmup-polluted) shot.  The first
        # repeat's prediction is the agreement sample, matching the old
        # single-shot behaviour on stochastic substrates.
        from repro.metrics import latency_summary
        predicted = None
        samples_ms = []
        for _ in range(max(1, int(repeat))):
            t0 = time.perf_counter()
            result = plan.predict(inputs)
            samples_ms.append((time.perf_counter() - t0) * 1e3)
            if predicted is None:
                predicted = result
        elapsed = latency_summary(samples_ms).p50
        if baseline is None:
            baseline = predicted
        agreement = float((predicted == baseline).mean())
        lines.append(f"{plan.backend.name:<12} {agreement:>9.1%} "
                     f"{elapsed:>10.2f}")
        ecc_lines = [line.strip()
                     for line in plan.summary().splitlines()
                     if line.strip().startswith("ECC:")]
        if plan.placements:
            # The summary's placement line names the fast-path kind (and
            # any dead-macro remaps), so the deploy table shows which
            # read path actually ran and how degraded the substrate is.
            placed = [line.strip()
                      for line in plan.summary().splitlines()
                      if "placed on" in line]
            reports.append("\n".join(placed + ecc_lines) + "\n"
                           + plan.floorplan().macro_report())
        elif ecc_lines:
            reports.append("\n".join(ecc_lines))
    lines += ["", "agreement is relative to the first backend; one "
                  "artifact, every substrate —\nthe deployment contract "
                  "of the saved plan."]
    if repeat > 1:
        lines.append(f"ms/batch is the p50 of {repeat} timed repeats "
                     "(repro.metrics.latency_summary).")
    for report in reports:
        lines += ["", report]
    return "\n".join(lines)


def _cmd_deploy_bundle(bundle, backend_spec, macro, batch: int,
                       seed: int, ecc: str, lifetime, fault_map, spares,
                       repeat: int) -> str:
    """Deploy every model of a bundle: per-model cross-backend agreement
    (each tenant on its own chips), then the co-resident packing — all
    tenants' shards first-fit-decreasing onto ONE macro pool — with the
    tenant-aware macro report and the before/after utilization the
    multi-tenant chip exists for."""
    import time

    import numpy as np

    from repro.io import load_compiled
    from repro.metrics import latency_summary
    from repro.rram import AcceleratorConfig, ChipFloorplan, ChipPlacer
    from repro.runtime import (PlanSerializationError, RRAMBackend,
                               ShardedRRAMBackend, available_backends)

    if backend_spec == "all":
        specs = ["reference", "packed", "ideal-rram", "sharded"]
    elif backend_spec in available_backends():
        specs = [backend_spec]
    else:
        raise SystemExit(
            f"unknown backend {backend_spec!r}; registered: "
            f"{', '.join(available_backends())} (or 'all')")

    lines = [bundle.describe(), "",
             f"synthetic inputs: {batch} rows per model (seed {seed})", "",
             f"{'model':<10} {'backend':<12} {'agreement':>10} "
             f"{'ms/batch':>10}"]
    placements_by_tenant: dict[str, list] = {}
    for name in bundle.names:
        artifact = bundle[name]
        if not artifact.self_contained:
            raise SystemExit(
                f"bundle model {name!r} is not self-contained (its "
                "front-end stays with the model); re-save from lowered "
                "plans ('compile ... --mode full_binary --save-bundle')")
        shape = artifact.input_shape
        if shape is None:
            raise SystemExit(f"bundle model {name!r} records no input "
                             "geometry; cannot generate evaluation "
                             "inputs")
        rng = np.random.default_rng(seed)
        if artifact.ops[0]["op"] == "bits":
            inputs = rng.integers(0, 2, size=(batch,) + shape) \
                .astype(np.uint8)
        else:
            inputs = rng.standard_normal((batch,) + shape)
        baseline = None
        for spec in specs:
            if spec == "ideal-rram":
                backend = RRAMBackend(AcceleratorConfig(ideal=True),
                                      ecc=None if ecc == "none" else ecc,
                                      lifetime=lifetime)
            elif spec == "rram" and (ecc != "none"
                                     or lifetime is not None):
                backend = RRAMBackend(ecc=None if ecc == "none" else ecc,
                                      lifetime=lifetime)
            elif spec == "sharded":
                backend = ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                             macro=macro,
                                             lifetime=lifetime,
                                             fault_map=fault_map,
                                             spares=spares, tenant=name)
            else:
                backend = spec
            try:
                plan = load_compiled(artifact, backend=backend)
            except PlanSerializationError as error:
                raise SystemExit(str(error))
            predicted = None
            samples_ms = []
            for _ in range(max(1, int(repeat))):
                t0 = time.perf_counter()
                result = plan.predict(inputs)
                samples_ms.append((time.perf_counter() - t0) * 1e3)
                if predicted is None:
                    predicted = result
            if baseline is None:
                baseline = predicted
            agreement = float((predicted == baseline).mean())
            lines.append(f"{name:<10} {plan.backend.name:<12} "
                         f"{agreement:>9.1%} "
                         f"{latency_summary(samples_ms).p50:>10.2f}")
            if spec == "sharded" and plan.placements:
                placements_by_tenant[name] = plan.placements
    lines += ["", "agreement is relative to each model's first backend; "
                  "one bundle, every substrate."]
    if placements_by_tenant:
        placer = ChipPlacer(macro, spares=spares)
        placement = placer.place(placements_by_tenant)
        all_placements = [p for group in placements_by_tenant.values()
                          for p in group]
        lines += ["", "co-resident placement (all tenants on one macro "
                      "pool):", "", placement.report(),
                  "", ChipFloorplan(all_placements).macro_report()]
    return "\n".join(lines)


def _cmd_serve(artifact_path: str, backend_spec: str = "packed",
               macro_spec: str = "32x32", host: str = "127.0.0.1",
               port: int = 8373, max_batch: int = 256,
               batch_window_us: float = 200.0, max_queue: int = 1024,
               pad: bool = False, request_timeout: float = 30.0,
               require_bundle: bool = False) -> int:
    """Run the always-on daemon until SIGTERM/SIGINT, then drain.

    Loads the artifact exactly once, binds it to one backend, and serves
    concurrent HTTP requests through the admission queue + micro-batcher
    onto the noise-free fast-path kernels.  A multi-model bundle
    (``compile --save-bundle``) hosts every model behind the same daemon
    with per-model routing.  Shutdown is graceful: the transport closes,
    every admitted request is served (drain, don't drop), and the
    per-model stats print as the exit report.
    """
    import pathlib
    import signal
    import threading

    from repro.io import load_bundle, load_compiled
    from repro.rram import AcceleratorConfig
    from repro.runtime import (PlanSerializationError, RRAMBackend,
                               ShardedRRAMBackend, available_backends)
    from repro.serve import HttpFront, PlanServer

    macro = _parse_macro(macro_spec)
    if not pathlib.Path(artifact_path).exists():
        raise SystemExit(f"no artifact at {artifact_path!r}; write one "
                         "with 'compile --save' first")
    bundle = load_bundle(artifact_path)
    if require_bundle and len(bundle) < 2:
        raise SystemExit(
            f"{artifact_path} holds a single plan but --bundle was "
            "given; write a multi-model bundle with 'compile eeg ecg "
            "--mode full_binary --save-bundle ...'")
    if backend_spec not in ("ideal-rram", "sharded") and \
            backend_spec not in available_backends():
        raise SystemExit(
            f"unknown backend {backend_spec!r}; registered: "
            f"{', '.join(available_backends())}")

    def _make_backend(tenant: str):
        # Fresh instance per tenant: the stateful backends reset their
        # placements on begin_plan, so co-resident plans can't share one.
        if backend_spec == "ideal-rram":
            return RRAMBackend(AcceleratorConfig(ideal=True))
        if backend_spec == "sharded":
            return ShardedRRAMBackend(AcceleratorConfig(ideal=True),
                                      macro=macro, tenant=tenant)
        return backend_spec

    plans: dict[str, object] = {}
    shapes: dict[str, tuple] = {}
    for name in bundle.names:
        artifact = bundle[name]
        if not artifact.self_contained:
            raise SystemExit(
                f"{artifact_path}[{name}] is not self-contained; the "
                "daemon has no model to host a front-end — re-save from "
                "a lowered plan ('compile <model> --mode full_binary ...')")
        if artifact.input_shape is None:
            raise SystemExit(f"{artifact_path}[{name}] records no input "
                             "geometry; cannot validate request shapes")
        try:
            plans[name] = load_compiled(artifact,
                                        backend=_make_backend(name))
        except PlanSerializationError as error:
            raise SystemExit(str(error))
        shapes[name] = artifact.input_shape
    try:
        server = PlanServer(plans, max_batch=max_batch,
                            window=batch_window_us * 1e-6,
                            max_queue=max_queue, pad=pad,
                            input_shape=shapes)
    except ValueError as error:        # noisy plan, bad knobs
        raise SystemExit(str(error))
    front = HttpFront(server, host=host, port=port,
                      request_timeout=request_timeout)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    front.start()
    for name, plan in plans.items():
        if len(plans) > 1:
            print(f"[{name}]")
        print(plan.summary())
    backend_names = sorted({p.backend.name for p in plans.values()})
    print(f"\nserving {artifact_path} "
          f"({', '.join(server.models())}) on {front.url} "
          f"(backend {', '.join(backend_names)}, max-batch {max_batch}, "
          f"window {batch_window_us:g} us, queue {max_queue} rows)")
    print("POST /v1/predict | GET /v1/models | GET /v1/stats | "
          "GET /healthz — SIGTERM drains and exits", flush=True)
    stop.wait()
    print("\nshutting down: draining admitted requests ...", flush=True)
    front.shutdown(drain=True)
    print(server.render_stats(), flush=True)
    return 0


def _cmd_train(model_name: str, mode_name: str = "full_binary",
               noise_sigma: float = 0.0, epochs: int | None = None,
               seed: int | None = None, checkpoint: str | None = None,
               save: str | None = None, overwrite: bool = False) -> str:
    """Close the train -> compile -> deploy loop from the command line.

    Runs the named training recipe (optionally with the read-noise
    surrogate in the loop), reports the per-epoch trajectory and the
    best validation accuracy, then optionally writes the checkpoint and
    the compiled plan artifact — from there the trained weights flow
    through ``deploy`` / ``serve`` / ``sweep`` unchanged.
    """
    from repro.experiments import train_demo_model

    if noise_sigma < 0:
        raise SystemExit(f"--noise-sigma must be non-negative, "
                         f"got {noise_sigma}")
    demo = train_demo_model(model_name, mode_name,
                            noise_sigma=noise_sigma, epochs=epochs,
                            seed=seed)
    result = demo.result
    flavour = f"read-noise sigma {noise_sigma:g} in the loop" \
        if noise_sigma > 0 else "clean (no read noise)"
    lines = [f"trained {model_name} [{mode_name}], {flavour}",
             f"  train rows: {len(demo.train_labels)}, "
             f"validation rows: {len(demo.val_labels)}",
             f"  epochs run: {len(result.history)}"
             + (f" (early stop at {result.stopped_epoch})"
                if result.stopped_epoch else ""),
             f"  best validation accuracy: {result.final_accuracy:.1%} "
             "(best epoch restored)"]
    if result.history:
        tail = result.history[-min(5, len(result.history)):]
        series = ", ".join(f"{int(h['epoch'])}:{h['top1']:.3f}"
                           for h in tail)
        lines.append(f"  val top-1 (last epochs): {series}")
    if checkpoint is not None:
        from repro.io import save_model

        try:
            save_model(demo.model, checkpoint, overwrite=overwrite)
        except FileExistsError as error:
            raise SystemExit(f"{error} (or pass --overwrite)")
        lines.append(f"checkpoint -> {checkpoint} (reload with "
                     "repro.io.load_model)")
    if save is not None:
        import pathlib

        from repro.io import load_plan, save_plan
        from repro.runtime import compile as compile_model

        plan = compile_model(demo.model, backend="reference")
        try:
            path = save_plan(plan, save, overwrite=overwrite,
                             allow_external_front_end=True)
        except FileExistsError as error:
            raise SystemExit(f"{error} (or pass --overwrite)")
        artifact = load_plan(path)
        status = "self-contained" if artifact.self_contained else \
            "front-end stays off-artifact (use --mode full_binary " \
            "for a self-contained one)"
        lines += [f"plan artifact -> {path} "
                  f"({pathlib.Path(path).stat().st_size / 1024:.0f} KB, "
                  f"{status})",
                  f"deploy it with: python -m repro deploy {path}"]
    return "\n".join(lines)


def _cmd_sweep(workload: str, jobs: int, out: str | None, trials: int = 1,
               trial_chunk: int | None = None,
               cache_stats: bool = False) -> str:
    """Run a stock sweep workload through the (optionally parallel)
    executor, reporting throughput in points/sec (and trials/sec when the
    points are trial-batched)."""
    import pathlib

    from repro.experiments import RateProgress, Sweep, grid, run_parallel
    from repro.experiments.workloads import SWEEP_WORKLOADS

    spec = SWEEP_WORKLOADS[workload]
    fn = spec.fn
    points = grid(**spec.axes(int(trials)))
    x_axis, metric, split = spec.x_axis, spec.metric, spec.split
    has_trials = bool(points) and "trials" in points[0]
    if trial_chunk is not None:
        # A pure-memory knob: it never changes results, so it stays out
        # of the point params (and therefore out of the resume identity).
        import functools
        fn = functools.partial(fn, trial_chunk=int(trial_chunk))

    path = pathlib.Path(out) if out is not None else \
        pathlib.Path("benchmarks/results") / f"sweep_{workload}.jsonl"
    sweep = Sweep(path, fn)
    missing = sum(1 for p in points if not sweep.completed(p))
    progress = RateProgress(missing, trials_per_point=trials) \
        if missing else None
    run_parallel(sweep, points, jobs=jobs, progress=progress)

    lines = [f"{workload} sweep: {len(points)} points x {trials} trial(s) "
             f"({missing} computed, {len(points) - missing} resumed) "
             f"-> {path}"]
    if progress is not None and progress.done:
        throughput = f"throughput: {progress.rate:.2f} points/sec"
        if trials > 1:
            throughput += f" ({progress.trial_rate:.1f} trials/sec)"
        lines.append(f"{throughput} at jobs={jobs}")
    for value in sorted({p[split] for p in points}, key=str):
        # Filter on the trial count too (when the workload has a trial
        # axis), so records from other trial budgets (or pre-trial-axis
        # files) never mix into the series.
        where = {split: value}
        if has_trials:
            where["trials"] = int(trials)
        xs, ys = sweep.series(x_axis, metric, where=where)
        series = ", ".join(f"{x:g}:{y:.4g}" for x, y in zip(xs, ys))
        lines.append(f"  {split}={value}: {metric} by {x_axis}: {series}")
    if cache_stats:
        from repro.experiments import plan_cache_stats
        stats = plan_cache_stats()
        line = (f"plan cache: {stats['hits']} hits, "
                f"{stats['misses']} misses, {stats['size']} resident")
        if jobs > 1:
            line += " (parent process only; workers keep their own caches)"
        lines.append(line)
    return "\n".join(lines)


def _cmd_floorplan(model_name: str, macro_spec: str) -> str:
    from repro.rram import plan_classifier

    macro = _parse_macro(macro_spec)
    # Classifier geometries of the three full-size paper models.
    shapes = {
        "eeg": [(80, 2520), (2, 80)],
        "ecg": [(75, 5152), (2, 75)],
        "mobilenet": [(1024, 1024), (1000, 1024)],
    }[model_name]
    plan = plan_classifier(shapes, macro)
    return plan.report() + "\n\n" + plan.macro_report()


def main(argv: Sequence[str] | None = None) -> int:
    """Parse ``argv`` (default ``sys.argv[1:]``) and run one command.

    Returns the process exit code: 0 on success, 1 when no command was
    given (help is printed).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    try:
        if args.command == "list":
            print(_cmd_list())
        elif args.command == "info":
            print(_cmd_info(args.id))
        elif args.command == "run":
            print(_cmd_run(args.id, args.jobs))
        elif args.command == "memory":
            print(analytic.run_table4())
        elif args.command == "energy":
            print(analytic.run_energy())
        elif args.command == "compile":
            print(_cmd_compile(args.model, args.backend, args.mode,
                               args.jobs, args.macros, args.save,
                               args.overwrite, args.save_bundle))
        elif args.command == "deploy":
            print(_cmd_deploy(args.artifact, args.backend, args.macros,
                              args.batch, args.seed, args.ecc,
                              args.years, args.temp, args.kill_macro,
                              args.spares, args.repeat))
        elif args.command == "serve":
            return _cmd_serve(args.artifact, args.backend, args.macros,
                              args.host, args.port, args.max_batch,
                              args.batch_window, args.max_queue,
                              args.pad, args.request_timeout,
                              args.bundle)
        elif args.command == "train":
            print(_cmd_train(args.model, args.mode, args.noise_sigma,
                             args.epochs, args.seed, args.checkpoint,
                             args.save, args.overwrite))
        elif args.command == "sweep":
            print(_cmd_sweep(args.workload, args.jobs, args.out,
                             args.trials, args.trial_chunk,
                             args.cache_stats))
        elif args.command == "floorplan":
            print(_cmd_floorplan(args.model, args.macro))
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early; exit
        # quietly like any well-behaved CLI.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main())
