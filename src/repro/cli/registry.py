"""Registry of every reproduced table, figure and ablation."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentInfo", "EXPERIMENTS"]


@dataclass(frozen=True)
class ExperimentInfo:
    """Catalogue entry for one paper artefact.

    ``kind`` is ``analytic`` when ``python -m repro run <id>`` executes it
    directly (seconds), or ``training`` when it needs the pytest harness
    (minutes); ``runner`` names the function in :mod:`repro.cli.analytic`
    for analytic experiments.
    """

    id: str
    artefact: str
    description: str
    kind: str
    modules: tuple[str, ...]
    bench: str
    runner: str | None = None


EXPERIMENTS: dict[str, ExperimentInfo] = {
    info.id: info for info in [
        ExperimentInfo(
            id="FIG4",
            artefact="Fig. 4 — bit error rate vs programming cycles",
            description=(
                "1T1R BL / 1T1R BLb / 2T2R mean bit error rate over 1e8-7e8 "
                "program cycles; the 2T2R differential read sits about two "
                "orders of magnitude below single-ended sensing."),
            kind="analytic",
            modules=("repro.rram.device", "repro.rram.cell",
                     "repro.rram.sense", "repro.rram.errors"),
            bench="benchmarks/bench_fig4_bit_error_rate.py",
            runner="run_fig4"),
        ExperimentInfo(
            id="TAB1",
            artefact="Table I — EEG classification network architecture",
            description=("Layer-by-layer kernels/padding/output shapes of "
                         "the end-to-end EEG model (Dose et al. baseline)."),
            kind="analytic",
            modules=("repro.models.eeg_net",),
            bench="benchmarks/bench_table1_eeg_architecture.py",
            runner="run_table1"),
        ExperimentInfo(
            id="TAB2",
            artefact="Table II — ECG classification network architecture",
            description=("Layer-by-layer geometry of the custom ECG "
                         "electrode-inversion CNN."),
            kind="analytic",
            modules=("repro.models.ecg_net",),
            bench="benchmarks/bench_table2_ecg_architecture.py",
            runner="run_table2"),
        ExperimentInfo(
            id="TAB3",
            artefact="Table III — accuracy: real vs BNN vs binary classifier",
            description=(
                "5-fold cross-validated accuracy of the three binarization "
                "modes on the EEG and ECG tasks, plus the scaled MobileNet "
                "image row."),
            kind="training",
            modules=("repro.models", "repro.experiments"),
            bench="benchmarks/bench_table3_accuracy.py"),
        ExperimentInfo(
            id="TAB4",
            artefact="Table IV — model memory usage and savings",
            description=(
                "Exact parameter/byte accounting of the full-size EEG, ECG "
                "and MobileNet architectures; savings from classifier "
                "binarization vs 32-bit and 8-bit references."),
            kind="analytic",
            modules=("repro.analysis.memory",),
            bench="benchmarks/bench_table4_memory.py",
            runner="run_table4"),
        ExperimentInfo(
            id="FIG7",
            artefact="Fig. 7 — ECG accuracy vs filter augmentation",
            description=(
                "Accuracy of real / all-binarized / binary-classifier ECG "
                "models as the convolution filter count is multiplied."),
            kind="training",
            modules=("repro.models.ecg_net", "repro.experiments"),
            bench="benchmarks/bench_fig7_filter_augmentation.py"),
        ExperimentInfo(
            id="FIG8",
            artefact="Fig. 8 — MobileNet binary-classifier training curves",
            description=("Top-1/Top-5 accuracy per epoch of the modified "
                         "MobileNet with a two-layer binarized classifier."),
            kind="training",
            modules=("repro.models.mobilenet", "repro.experiments"),
            bench="benchmarks/bench_fig8_mobilenet_training.py"),
        ExperimentInfo(
            id="XTRA1",
            artefact="§II-B claim — 2T2R matches single-error-correction ECC",
            description=("Bit error rate of the ECC-less 2T2R read vs "
                         "Hamming-protected 1T1R storage at equal "
                         "redundancy."),
            kind="training",
            modules=("repro.rram.ecc",),
            bench="benchmarks/bench_ablation_2t2r_vs_ecc.py"),
        ExperimentInfo(
            id="XTRA2",
            artefact="§II-B claim — BNN accuracy robust to bit errors",
            description="Fault-injection sweep on a deployed ECG BNN.",
            kind="training",
            modules=("repro.rram.errors",),
            bench="benchmarks/bench_ablation_fault_injection.py"),
        ExperimentInfo(
            id="XTRA3",
            artefact="Eq. 3 — in-memory inference is bit-exact",
            description=("Deployed XNOR-popcount accelerator vs the "
                         "software model at zero bit-error rate."),
            kind="training",
            modules=("repro.rram.accelerator",),
            bench="benchmarks/bench_ablation_accelerator_fidelity.py"),
        ExperimentInfo(
            id="XTRA4",
            artefact="§II energy argument — in-memory vs digital",
            description=("Per-inference energy/area of the Fig. 5 "
                         "architecture vs SRAM/DRAM digital datapaths with "
                         "and without ECC."),
            kind="analytic",
            modules=("repro.rram.energy",),
            bench="benchmarks/bench_ablation_energy.py",
            runner="run_energy"),
        ExperimentInfo(
            id="XTRA5",
            artefact="companion claim — program-verify trades energy for BER",
            description=("Program-and-verify retry loops on a worn device "
                         "corner."),
            kind="training",
            modules=("repro.rram.programming",),
            bench="benchmarks/bench_ablation_program_verify.py"),
        ExperimentInfo(
            id="XTRA6",
            artefact="deployment-life claims — retention and yield",
            description=("Retention-drift BER over years and Monte-Carlo "
                         "die-to-die yield."),
            kind="analytic",
            modules=("repro.rram.reliability",),
            bench="benchmarks/bench_ablation_retention_yield.py",
            runner="run_retention"),
        ExperimentInfo(
            id="XTRA7",
            artefact="§II-A claim — analog coding pays an ADC/DAC overhead",
            description=(
                "Analog crossbar (ISAAC/PRIME-style) matvec error vs ADC "
                "resolution, and converter energy/area against the 1-bit "
                "PCSA periphery."),
            kind="analytic",
            modules=("repro.rram.analog",),
            bench="benchmarks/bench_ablation_analog_adc.py",
            runner="run_analog"),
        ExperimentInfo(
            id="XTRA9",
            artefact="§I reference [14] — stochastic binary input encoding",
            description=(
                "Bernoulli ±1 input streams: dot-product fidelity and BNN "
                "decision agreement vs stream length; the ADC-free front "
                "end of the companion work."),
            kind="training",
            modules=("repro.nn.stochastic",),
            bench="benchmarks/bench_ablation_stochastic_encoding.py"),
        ExperimentInfo(
            id="XTRA13",
            artefact="system payoff — usable write-cycle lifetime",
            description=(
                "Fig. 4's wear model composed with the measured BNN error "
                "tolerance: write-endurance lifetime under an accuracy "
                "budget, 1T1R vs 2T2R."),
            kind="training",
            modules=("repro.analysis.lifetime",),
            bench="benchmarks/bench_ablation_lifetime.py"),
        ExperimentInfo(
            id="XTRA12",
            artefact="Fig. 2 building block — array macro geometry",
            description=(
                "Macro-size sweep for the paper's classifiers: macro "
                "count, stranded-synapse utilization, and silicon area "
                "around the 32x32 test-vehicle geometry."),
            kind="training",
            modules=("repro.rram.floorplan",),
            bench="benchmarks/bench_ablation_macro_geometry.py"),
        ExperimentInfo(
            id="XTRA11",
            artefact="§II-B note — conv layers adapted to the fabric",
            description=(
                "Weight-stationary binary 1-D/2-D convolution on 2T2R "
                "arrays: bit-exactness on ideal devices, near-1 agreement "
                "on fresh ones, and the data-reuse cost shape."),
            kind="training",
            modules=("repro.rram.conv", "repro.rram.conv2d"),
            bench="benchmarks/bench_ablation_conv_fabric.py"),
        ExperimentInfo(
            id="XTRA10",
            artefact="§II-A argument — XNOR replaces multipliers",
            description=(
                "Packed 64-bit-word XNOR-popcount kernels vs the integer "
                "matmul / float im2col formulations: the EEG classifier "
                "dense layer and a binary separable conv block (bit-sliced "
                "depthwise + packed pointwise), bit-exact agreement and "
                "the measured speedups (BENCH_packed_conv.json)."),
            kind="training",
            modules=("repro.nn.bitops", "repro.runtime"),
            bench="benchmarks/bench_ablation_packed_kernel.py"),
        ExperimentInfo(
            id="XTRA14",
            artefact="throughput claim — parallel sweep execution",
            description=(
                "The Fig. 4/7/8 sweeps on a process pool: worker/"
                "persistence contract, wall-clock speedup over the serial "
                "loop on a 16-point grid, and byte-identical resume after "
                "a simulated crash (records BENCH_sweep_parallel.json)."),
            kind="script",
            modules=("repro.experiments.executor",
                     "repro.experiments.sweep"),
            bench="benchmarks/bench_sweep_parallel.py"),
        ExperimentInfo(
            id="XTRA15",
            artefact="throughput claim — fast-path RRAM simulation kernels",
            description=(
                "Noise-free Fig. 5 configurations dispatched to the packed "
                "uint64 XNOR-popcount kernels at program time vs full "
                "device simulation on the quickstart-scale EEG classifier, "
                "bit-exact against the reference backend (records "
                "BENCH_rram_hotpath.json)."),
            kind="script",
            modules=("repro.rram.accelerator", "repro.nn.bitops",
                     "repro.runtime"),
            bench="benchmarks/bench_rram_hotpath.py"),
        ExperimentInfo(
            id="XTRA16",
            artefact="throughput claim — trial-batched Monte-Carlo engine",
            description=(
                "A Fig. 4-style BER grid evaluated with the trial-batched "
                "noisy read engine and the per-worker programmed-plan "
                "cache vs the per-trial rebuild baseline: >=5x wall-clock "
                "with bit-identical statistics under fixed per-trial RNG "
                "streams, and cached-plan sweeps byte-identical to cold "
                "runs (records BENCH_mc_trials.json)."),
            kind="script",
            modules=("repro.rram.mc", "repro.rram.array",
                     "repro.rram.accelerator",
                     "repro.experiments.executor",
                     "repro.experiments.workloads"),
            bench="benchmarks/bench_mc_trials.py"),
        ExperimentInfo(
            id="XTRA17",
            artefact="scale claim — sharded multi-macro backend",
            description=(
                "Every folded layer split across fixed-geometry simulated "
                "RRAM chips by its floorplan shard map (fan-in slices, "
                "partial-popcount reduction, fan-out stripes): bit-"
                "identical to the monolithic RRAM backend on noise-free "
                "configs at divisible and tail-shard geometries, chunk-"
                "invariant Monte-Carlo trials with per-(shard, trial) "
                "noise streams, and sharded-vs-monolithic throughput "
                "(records BENCH_sharded_backend.json)."),
            kind="script",
            modules=("repro.rram.accelerator", "repro.rram.floorplan",
                     "repro.rram.mc", "repro.runtime"),
            bench="benchmarks/bench_sharded_backend.py"),
        ExperimentInfo(
            id="XTRA18",
            artefact="reliability claim — lifetime faults, spares, ECC",
            description=(
                "Lifetime fault injection through the MC engine: "
                "retention aging (Arrhenius bake), split-stable stuck-at "
                "fault maps, dead-macro remap onto spare chips "
                "(bit-identical degraded execution), and the executable "
                "SECDED weight store — agreement-vs-years curves showing "
                "ECC extends the usable lifetime of a deployed "
                "classifier (records BENCH_reliability.json)."),
            kind="script",
            modules=("repro.rram.faults", "repro.rram.reliability",
                     "repro.rram.ecc", "repro.rram.accelerator",
                     "repro.runtime"),
            bench="benchmarks/bench_reliability.py"),
        ExperimentInfo(
            id="XTRA19",
            artefact="serving claim — micro-batched inference daemon",
            description=(
                "The always-on daemon (``repro serve``) keeps one "
                "compiled plan resident and coalesces concurrent "
                "requests into batched dispatches on the noise-free "
                "packed kernels: bounded admission queue with "
                "backpressure, window/fill micro-batcher, single "
                "executor, per-request demux — bit-identical to solo "
                "predict, with a saturated-throughput-vs-batch-window "
                "curve (records BENCH_serve.json)."),
            kind="script",
            modules=("repro.serve.batcher", "repro.serve.server",
                     "repro.serve.stats", "repro.serve.client",
                     "repro.metrics"),
            bench="benchmarks/bench_serve.py"),
        ExperimentInfo(
            id="XTRA20",
            artefact="multi-tenant claim — co-resident model bundles",
            description=(
                "Several models resident on one simulated chip and one "
                "daemon: pickle-free bundle artifacts, ChipPlacer "
                "first-fit-decreasing co-resident placement with a "
                "pooled spare reserve, MultiTenantController "
                "interleaved word-line scans (one batched kernel "
                "dispatch across tenants, bit-identical to solo), and "
                "a tenant-routing serve front — aggregate req/s vs "
                "sequential solo daemons on the same core budget "
                "(records BENCH_multitenant.json)."),
            kind="script",
            modules=("repro.io.plans", "repro.rram.floorplan",
                     "repro.rram.accelerator", "repro.serve.server",
                     "repro.serve.stats"),
            bench="benchmarks/bench_multitenant.py"),
        ExperimentInfo(
            id="XTRA21",
            artefact="noise-aware training claim — hardware in the loop",
            description=(
                "The train -> compile -> deploy loop closed in-repo: "
                "deterministic training recipes for the demo models, an "
                "RRAM read-noise surrogate (per-bit sense-flip CLT "
                "model, straight-through backward) armed on the "
                "classifier layers during training, and the "
                "trained_robustness sweep comparing seeded vs clean- "
                "trained vs noise-trained weights across the Fig. 4 "
                "sense-sigma grid on a deployed zero-variability chip "
                "(records BENCH_noise_training.json)."),
            kind="script",
            modules=("repro.nn.noise", "repro.experiments.training",
                     "repro.experiments.workloads", "repro.io.plans"),
            bench="benchmarks/bench_noise_training.py"),
        ExperimentInfo(
            id="XTRA8",
            artefact="§I reference point — 8-bit quantization",
            description=(
                "Accuracy and size of post-training-quantized models "
                "across bit widths; the paper's 8-bit reference column."),
            kind="training",
            modules=("repro.nn.quant", "repro.analysis.quantization"),
            bench="benchmarks/bench_ablation_quantization.py"),
    ]
}
