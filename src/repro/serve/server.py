"""The always-on inference daemon: transport, lifecycle, execution.

Dataflow (one process, one or more co-resident models)::

    client request (rows of raw model input, optionally model-tagged)
        -> tenant router           ``model=`` names the lane; unknown
                                   model -> reject (HTTP 400)
        -> admission queue         bounded per model; full -> reject
                                   (HTTP 429)
        -> micro-batcher           coalesce FIFO rows per model, flush
                                   on window timeout or max-batch fill
        -> executor thread         ONE thread drives CompiledModel.scores
                                   on the noise-free packed/stacked
                                   kernels; one wake cycle carries the
                                   flushes of EVERY ready model
                                   back-to-back (cross-tenant coalescing)
        -> demultiplexer           slice per-request score rows back out,
                                   bit-identical to predicting each
                                   request alone
        -> response                scores + argmax labels (+ latency)

Threading model: transport threads (one per in-flight HTTP connection)
only touch the batchers under the server's condition variable and then
block on their request handle; the single executor thread is the only
caller of any compiled plan.  The noise-free fast-path kernels are
reentrant (see ``tests/rram/test_thread_reentrancy.py``), so even this
single-executor rule is a throughput choice — one saturated batched
kernel beats competing partial ones — not a correctness requirement.
Noisy (Monte-Carlo) plans draw from controller-owned RNG streams and are
*not* servable: the constructor refuses plans whose controllers are off
the fast path.

Multi-tenancy: pass a ``{name: plan}`` mapping (e.g. from
:func:`repro.io.load_compiled_bundle`) and each model gets its own
admission queue, batcher, geometry contract and
:class:`~repro.serve.stats.ServeStats`, while the executor and the HTTP
front stay shared.  Requests route by ``model=`` on :meth:`submit` (or
``"model"`` in the ``POST /v1/predict`` body); with a single model the
tag is optional and everything behaves exactly as before.

Lifecycle: ``close(drain=True)`` (the SIGTERM path) stops admissions
(HTTP 503), lets the executor flush every admitted request of every
model — drain, don't drop — then joins it.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Mapping
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve.batcher import MicroBatcher
from repro.serve.stats import ServeStats, render_tenant_table

__all__ = ["PlanServer", "HttpFront", "ServeRequest", "QueueFull",
           "ServerClosed", "UnknownModel"]


class QueueFull(RuntimeError):
    """Admission queue at capacity (HTTP 429 — retryable), or a request
    larger than the whole queue (``permanent`` — HTTP 413)."""

    def __init__(self, message: str, permanent: bool = False):
        super().__init__(message)
        self.permanent = permanent


class ServerClosed(RuntimeError):
    """The daemon is draining or stopped (HTTP 503)."""


class UnknownModel(ValueError):
    """The request named a model this daemon does not serve — or named
    none while several are resident (HTTP 400, a client error: retrying
    the same request can never succeed)."""

    def __init__(self, model, available):
        self.model = model
        self.available = sorted(str(name) for name in available)
        served = ", ".join(self.available)
        if model is None:
            message = ("request must name a model: this daemon serves "
                       f"[{served}]")
        else:
            message = (f"unknown model {model!r}: this daemon serves "
                       f"[{served}]")
        super().__init__(message)


class ServeRequest:
    """A submitted request's handle: wait on it, then read the scores."""

    def __init__(self, request_id: int, rows: int, submitted_at: float,
                 model: str = "model"):
        self.id = request_id
        self.rows = rows
        self.submitted_at = submitted_at
        self.model = model
        self.scores: np.ndarray | None = None
        self.error: Exception | None = None
        self.latency: float | None = None     # set at completion (seconds)
        self._event = threading.Event()
        self._remaining = rows

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the response is demuxed (True) or ``timeout``
        elapses (False)."""
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def labels(self) -> np.ndarray:
        """Per-row argmax labels (requires a completed request)."""
        if self.scores is None:
            raise RuntimeError("request not completed (or it failed)")
        return self.scores.argmax(axis=1)

    # -- executor side ---------------------------------------------------
    def _deliver(self, offset: int, part: np.ndarray, now: float) -> None:
        if self.scores is None:
            if offset == 0 and len(part) == self.rows:
                self.scores = part          # whole request in one flush
            else:
                self.scores = np.empty((self.rows,) + part.shape[1:],
                                       dtype=part.dtype)
                self.scores[offset:offset + len(part)] = part
        else:
            self.scores[offset:offset + len(part)] = part
        self._remaining -= len(part)
        if self._remaining == 0:
            self.latency = now - self.submitted_at
            self._event.set()

    def _fail(self, error: Exception) -> None:
        self.error = error
        self._event.set()


class _Tenant:
    """One served model's private lane: plan, batcher, geometry, stats."""

    __slots__ = ("name", "plan", "batcher", "input_shape", "dtype", "stats")

    def __init__(self, name, plan, batcher, input_shape, dtype, stats):
        self.name = name
        self.plan = plan
        self.batcher = batcher
        self.input_shape = input_shape
        self.dtype = dtype
        self.stats = stats


def _per_model(value, name: str, default=None):
    """Resolve a possibly per-model setting: mappings are keyed by model
    name (missing names fall back to ``default``), anything else applies
    to every model."""
    if isinstance(value, Mapping):
        return value.get(name, default)
    return value if value is not None else default


class PlanServer:
    """Micro-batching execution core around one or more compiled plans.

    Transport-agnostic: :meth:`submit` + :class:`ServeRequest` are the
    whole client API; :class:`HttpFront` (or a test, or the load
    generator) layers a wire protocol on top.  ``input_shape`` is the
    per-sample geometry contract (defaults to the plan's recorded one
    when available); ``dtype`` canonicalizes request arrays at admission
    so coalescing requests never changes a single bit relative to
    predicting the same canonical array alone.

    ``plan`` may be a single compiled plan (served as ``model``) or a
    ``{name: plan}`` mapping for a multi-tenant daemon.  In the mapping
    case ``max_batch``, ``window``, ``max_queue``, ``input_shape`` and
    ``dtype`` may each be either one value for every model or a mapping
    keyed by model name.  Per-model :class:`ServeStats` always exist;
    ``self.stats`` is the sole model's stats for a single-model server
    (unchanged from the single-plan days) and a separate aggregate
    instance when several models are resident.
    """

    def __init__(self, plan, *, max_batch=256, window=200e-6,
                 max_queue=1024, pad: bool = False, input_shape=None,
                 dtype=None, model: str = "model",
                 stats: ServeStats | None = None):
        if isinstance(plan, Mapping):
            if not plan:
                raise ValueError("no models to serve (empty mapping)")
            plans = {str(name): tenant_plan
                     for name, tenant_plan in plan.items()}
        else:
            plans = {str(model): plan}
        multi = len(plans) > 1
        self._tenants: dict[str, _Tenant] = {}
        for name, tenant_plan in plans.items():
            _require_deterministic(tenant_plan)
            shape = _per_model(input_shape, name)
            if shape is not None:
                shape = tuple(int(s) for s in shape)
            tenant_dtype = _per_model(dtype, name)
            if tenant_dtype is None:
                front = tenant_plan.ops[0]
                spec = getattr(front, "spec", None) or {}
                tenant_dtype = np.uint8 if spec.get("op") == "bits" \
                    else np.float64
            batcher = MicroBatcher(
                max_batch=int(_per_model(max_batch, name, 256)),
                window=float(_per_model(window, name, 200e-6)),
                max_queue=int(_per_model(max_queue, name, 1024)),
                pad=pad)
            tenant_stats = ServeStats(model=name) if multi \
                else (stats or ServeStats(model=name))
            self._tenants[name] = _Tenant(name, tenant_plan, batcher,
                                          shape, np.dtype(tenant_dtype),
                                          tenant_stats)
        if multi:
            self.stats = stats or ServeStats(model="aggregate")
            self.plan = None
            self.input_shape = None
            self.dtype = None
            self._batcher = None
        else:
            sole = next(iter(self._tenants.values()))
            self.stats = sole.stats
            self.plan = sole.plan          # single-model conveniences
            self.input_shape = sole.input_shape
            self.dtype = sole.dtype
            self._batcher = sole.batcher
        self._cond = threading.Condition()
        self._handles: dict[int, ServeRequest] = {}
        self._next_id = 0
        self._draining = False
        self._stopped = False
        self._executor = threading.Thread(target=self._executor_loop,
                                          name="repro-serve-executor",
                                          daemon=True)
        self._executor.start()

    # -- tenant routing ----------------------------------------------------
    def models(self) -> list[str]:
        """Served model names, in registration order."""
        return list(self._tenants)

    def describe_models(self) -> list[dict]:
        """One JSON-ready record per served model (``GET /v1/models``)."""
        return [{
            "name": t.name,
            "input_shape": list(t.input_shape)
            if t.input_shape is not None else None,
            "dtype": t.dtype.name,
            "max_batch": t.batcher.max_batch,
            "window_us": t.batcher.window * 1e6,
            "max_queue": t.batcher.max_queue,
        } for t in self._tenants.values()]

    def _resolve(self, model) -> _Tenant:
        if model is None:
            if len(self._tenants) == 1:
                return next(iter(self._tenants.values()))
            raise UnknownModel(None, self._tenants)
        tenant = self._tenants.get(str(model))
        if tenant is None:
            raise UnknownModel(model, self._tenants)
        return tenant

    def _stat(self, tenant: _Tenant, method: str, *args) -> None:
        """Record on the tenant's counters and (when distinct) on the
        aggregate — single-model servers alias the two, so nothing is
        ever double-counted."""
        getattr(tenant.stats, method)(*args)
        if tenant.stats is not self.stats:
            getattr(self.stats, method)(*args)

    # -- client API ------------------------------------------------------
    def submit(self, inputs, model: str | None = None) -> ServeRequest:
        """Admit one request: ``(rows,) + input_shape`` (or one bare
        sample, auto-wrapped).  ``model`` routes to the named tenant
        (optional when a single model is served).  Returns the request's
        handle; raises :class:`UnknownModel` for a bad route,
        :class:`QueueFull` under backpressure and :class:`ServerClosed`
        once draining."""
        tenant = self._resolve(model)
        inputs = np.ascontiguousarray(inputs, dtype=tenant.dtype)
        if tenant.input_shape is not None and \
                inputs.shape == tenant.input_shape:
            inputs = inputs[None]
        if tenant.input_shape is not None and \
                inputs.shape[1:] != tenant.input_shape:
            raise ValueError(
                f"request shape {inputs.shape} != (rows, "
                f"{', '.join(map(str, tenant.input_shape))}) "
                f"for model {tenant.name!r}")
        if inputs.ndim < 2:
            raise ValueError(
                f"request must be (rows,) + sample shape, "
                f"got {inputs.shape}")
        now = time.monotonic()
        with self._cond:
            if self._draining:
                raise ServerClosed("server is draining; not accepting "
                                   "new requests")
            if len(inputs) > tenant.batcher.max_queue:
                self._stat(tenant, "record_reject")
                raise QueueFull(
                    f"request of {len(inputs)} rows exceeds the whole "
                    f"admission queue ({tenant.batcher.max_queue} rows)",
                    permanent=True)
            handle = ServeRequest(self._next_id, len(inputs), now,
                                  model=tenant.name)
            if not tenant.batcher.submit(handle.id, inputs, now):
                self._stat(tenant, "record_reject")
                raise QueueFull(
                    f"admission queue full "
                    f"({tenant.batcher.depth}/{tenant.batcher.max_queue} "
                    "rows queued); retry")
            self._next_id += 1
            self._handles[handle.id] = handle
            self._stat(tenant, "record_admit", tenant.batcher.depth)
            self._cond.notify()
        return handle

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return sum(t.batcher.depth for t in self._tenants.values())

    @property
    def draining(self) -> bool:
        return self._draining

    # -- stats -----------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Aggregate counters plus a ``"models"`` section with every
        tenant's own snapshot (``GET /v1/stats``)."""
        snapshot = self.stats.snapshot()
        snapshot["models"] = {name: t.stats.snapshot()
                              for name, t in self._tenants.items()}
        return snapshot

    def render_stats(self) -> str:
        """The daemon's shutdown report: the aggregate block, plus a
        per-model exit table when several models are resident."""
        if len(self._tenants) == 1:
            return self.stats.render()
        table = render_tenant_table(
            [t.stats.snapshot() for t in self._tenants.values()])
        return "\n".join([self.stats.render(), "", table])

    # -- lifecycle -------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None):
        """Stop the daemon.  ``drain=True`` (the SIGTERM contract) serves
        every admitted request of every model before the executor exits;
        ``drain=False`` fails queued requests with :class:`ServerClosed`."""
        with self._cond:
            if self._stopped:
                return
            self._draining = True
            if not drain:
                now = time.monotonic()
                for tenant in self._tenants.values():
                    for flush in tenant.batcher.drain(now):
                        for s in flush.slices:
                            if s.final:
                                handle = self._handles.pop(s.request_id)
                                handle._fail(ServerClosed("server stopped"))
            self._cond.notify_all()
        self._executor.join(timeout)
        self._stopped = True

    # -- executor --------------------------------------------------------
    def _executor_loop(self):
        tenants = list(self._tenants.values())
        while True:
            flushes = []
            with self._cond:
                while True:
                    if self._draining:
                        if all(t.batcher.n_waiting == 0 for t in tenants):
                            return
                        break                    # drain: flush regardless
                    now = time.monotonic()
                    if any(t.batcher.ready(now) for t in tenants):
                        break
                    deadlines = [d for d in (t.batcher.next_deadline()
                                             for t in tenants)
                                 if d is not None]
                    self._cond.wait(
                        None if not deadlines
                        else max(0.0, min(deadlines) - now))
                # Cross-tenant coalescing: one wake cycle collects the
                # flush of EVERY ready model, so back-to-back dispatches
                # share the wake/lock overhead instead of paying it per
                # tenant.
                now = time.monotonic()
                for tenant in tenants:
                    if self._draining or tenant.batcher.ready(now):
                        flush = tenant.batcher.flush(now)
                        if flush is not None:
                            flushes.append((tenant, flush,
                                            tenant.batcher.depth))
            for tenant, flush, depth in flushes:
                self._execute(tenant, flush, depth)

    def _execute(self, tenant: _Tenant, flush, depth: int) -> None:
        try:
            scores = tenant.plan.scores(flush.inputs)[:flush.rows]
        except Exception as error:     # deliver the failure, keep serving
            with self._cond:
                for s in flush.slices:
                    handle = self._handles.pop(s.request_id, None) \
                        if s.final else self._handles.get(s.request_id)
                    if handle is not None:
                        handle._fail(error)
            return
        now = time.monotonic()
        self._stat(tenant, "record_batch", flush.rows, depth)
        with self._cond:
            handles = [(s, self._handles.pop(s.request_id)
                        if s.final else self._handles[s.request_id])
                       for s in flush.slices]
        for s, handle in handles:
            handle._deliver(s.offset, scores[s.row_start:s.row_stop], now)
            if s.final:
                self._stat(tenant, "record_complete", handle.latency)


def _require_deterministic(plan) -> None:
    """Serving demuxes one batched evaluation into per-request answers;
    that is only bit-identical to solo evaluation when every substrate op
    is deterministic (the noise-free fast path).  Noisy plans draw from
    controller-owned RNG streams whose consumption order depends on
    batch composition — refuse them loudly."""
    for op in getattr(plan, "layer_ops", []):
        controller = getattr(op.executor, "controller", None)
        if controller is not None and not controller.fast_path:
            raise ValueError(
                "cannot serve a noisy plan: controller "
                f"{controller!r} is off the deterministic fast path "
                "(serving requires noise-free configs so batched == "
                "per-request bit-identically)")


class HttpFront:
    """A minimal stdlib HTTP/1.1 front over a :class:`PlanServer`.

    Endpoints::

        POST /v1/predict   {"inputs": [[...], ...], "model": "eeg"?} ->
                           {"scores": [[...]], "labels": [...],
                            "model": ..., "latency_ms": ...}
        GET  /v1/models    the served models and their contracts (JSON)
        GET  /v1/stats     aggregate + per-model counters and latency
                           percentiles (JSON)
        GET  /healthz      {"status": "ok" | "draining"}

    ``"model"`` in the predict body is required only when several models
    are resident; an unknown (or missing-but-required) name is a 400
    client error whose body lists the served models.  Backpressure
    surfaces as 429 (retryable) / 413 (request larger than the queue); a
    draining daemon answers 503; unknown paths get a structured 404 that
    lists the routes.  One thread per in-flight connection (stdlib
    ``ThreadingHTTPServer``); all of them funnel into the single
    executor through the per-model admission queues.
    """

    ROUTES = ("GET /healthz", "GET /v1/models", "GET /v1/stats",
              "POST /v1/predict")

    def __init__(self, server: PlanServer, host: str = "127.0.0.1",
                 port: int = 0, request_timeout: float = 30.0):
        self.server = server
        self.request_timeout = float(request_timeout)
        front = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Responses are written as several small sends (status,
            # headers, body); with Nagle on, those interact with delayed
            # ACKs into ~40 ms stalls per request on loopback.
            disable_nagle_algorithm = True

            def log_message(self, *args):   # quiet: stats, not access logs
                pass

            def _reply(self, code: int, payload: dict) -> None:
                body = json.dumps(payload).encode()
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _not_found(self) -> None:
                self._reply(404, {"error": "no such route",
                                  "path": self.path,
                                  "routes": list(HttpFront.ROUTES)})

            def do_GET(self):
                if self.path == "/healthz":
                    draining = front.server.draining
                    self._reply(503 if draining else 200,
                                {"status": "draining" if draining
                                 else "ok"})
                elif self.path == "/v1/models":
                    self._reply(200, {
                        "models": front.server.describe_models()})
                elif self.path == "/v1/stats":
                    self._reply(200, front.server.stats_snapshot())
                else:
                    self._not_found()

            def do_POST(self):
                if self.path != "/v1/predict":
                    self._not_found()
                    return
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    payload = json.loads(self.rfile.read(length))
                    inputs = payload["inputs"]
                    model = payload.get("model")
                except (ValueError, KeyError, TypeError) as error:
                    self._reply(400, {"error": f"bad request: {error}"})
                    return
                try:
                    handle = front.server.submit(inputs, model=model)
                except UnknownModel as error:
                    self._reply(400, {"error": str(error),
                                      "model": error.model,
                                      "available": error.available})
                    return
                except QueueFull as error:
                    self._reply(413 if error.permanent else 429,
                                {"error": str(error)})
                    return
                except ServerClosed as error:
                    self._reply(503, {"error": str(error)})
                    return
                except ValueError as error:
                    self._reply(400, {"error": str(error)})
                    return
                if not handle.wait(front.request_timeout):
                    self._reply(504, {"error": "timed out waiting for "
                                               "the executor"})
                    return
                if handle.error is not None:
                    self._reply(500, {"error": str(handle.error)})
                    return
                self._reply(200, {
                    "scores": handle.scores.tolist(),
                    "labels": handle.labels.tolist(),
                    "model": handle.model,
                    "latency_ms": handle.latency * 1e3,
                })

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpFront":
        """Serve in a background thread (returns immediately)."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve-http",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the transport, then drain (or drop) the execution core."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.server.close(drain=drain)
