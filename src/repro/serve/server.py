"""The always-on inference daemon: transport, lifecycle, execution.

Dataflow (one model, one process)::

    client request (rows of raw model input)
        -> admission queue        bounded; full -> reject (HTTP 429)
        -> micro-batcher          coalesce FIFO rows, flush on window
                                  timeout or max-batch fill
        -> executor thread        ONE thread drives CompiledModel.scores
                                  on the noise-free packed/stacked kernels
        -> demultiplexer          slice per-request score rows back out,
                                  bit-identical to predicting each
                                  request alone
        -> response               scores + argmax labels (+ latency)

Threading model: transport threads (one per in-flight HTTP connection)
only touch the batcher under the server's condition variable and then
block on their request handle; the single executor thread is the only
caller of the compiled plan.  The noise-free fast-path kernels are
reentrant (see ``tests/rram/test_thread_reentrancy.py``), so even this
single-executor rule is a throughput choice — one saturated batched
kernel beats competing partial ones — not a correctness requirement.
Noisy (Monte-Carlo) plans draw from controller-owned RNG streams and are
*not* servable: the constructor refuses plans whose controllers are off
the fast path.

Lifecycle: ``close(drain=True)`` (the SIGTERM path) stops admissions
(HTTP 503), lets the executor flush every admitted request — drain,
don't drop — then joins it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve.batcher import MicroBatcher
from repro.serve.stats import ServeStats

__all__ = ["PlanServer", "HttpFront", "ServeRequest", "QueueFull",
           "ServerClosed"]


class QueueFull(RuntimeError):
    """Admission queue at capacity (HTTP 429 — retryable), or a request
    larger than the whole queue (``permanent`` — HTTP 413)."""

    def __init__(self, message: str, permanent: bool = False):
        super().__init__(message)
        self.permanent = permanent


class ServerClosed(RuntimeError):
    """The daemon is draining or stopped (HTTP 503)."""


class ServeRequest:
    """A submitted request's handle: wait on it, then read the scores."""

    def __init__(self, request_id: int, rows: int, submitted_at: float):
        self.id = request_id
        self.rows = rows
        self.submitted_at = submitted_at
        self.scores: np.ndarray | None = None
        self.error: Exception | None = None
        self.latency: float | None = None     # set at completion (seconds)
        self._event = threading.Event()
        self._remaining = rows

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the response is demuxed (True) or ``timeout``
        elapses (False)."""
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def labels(self) -> np.ndarray:
        """Per-row argmax labels (requires a completed request)."""
        if self.scores is None:
            raise RuntimeError("request not completed (or it failed)")
        return self.scores.argmax(axis=1)

    # -- executor side ---------------------------------------------------
    def _deliver(self, offset: int, part: np.ndarray, now: float) -> None:
        if self.scores is None:
            if offset == 0 and len(part) == self.rows:
                self.scores = part          # whole request in one flush
            else:
                self.scores = np.empty((self.rows,) + part.shape[1:],
                                       dtype=part.dtype)
                self.scores[offset:offset + len(part)] = part
        else:
            self.scores[offset:offset + len(part)] = part
        self._remaining -= len(part)
        if self._remaining == 0:
            self.latency = now - self.submitted_at
            self._event.set()

    def _fail(self, error: Exception) -> None:
        self.error = error
        self._event.set()


class PlanServer:
    """Micro-batching execution core around one compiled plan.

    Transport-agnostic: :meth:`submit` + :class:`ServeRequest` are the
    whole client API; :class:`HttpFront` (or a test, or the load
    generator) layers a wire protocol on top.  ``input_shape`` is the
    per-sample geometry contract (defaults to the plan's recorded one
    when available); ``dtype`` canonicalizes request arrays at admission
    so coalescing requests never changes a single bit relative to
    predicting the same canonical array alone.
    """

    def __init__(self, plan, *, max_batch: int = 256,
                 window: float = 200e-6, max_queue: int = 1024,
                 pad: bool = False, input_shape=None, dtype=None,
                 model: str = "model", stats: ServeStats | None = None):
        self.plan = plan
        _require_deterministic(plan)
        self.input_shape = tuple(int(s) for s in input_shape) \
            if input_shape is not None else None
        if dtype is None:
            front = plan.ops[0]
            spec = getattr(front, "spec", None) or {}
            dtype = np.uint8 if spec.get("op") == "bits" else np.float64
        self.dtype = np.dtype(dtype)
        self.stats = stats or ServeStats(model=model)
        self._batcher = MicroBatcher(max_batch=max_batch, window=window,
                                     max_queue=max_queue, pad=pad)
        self._cond = threading.Condition()
        self._handles: dict[int, ServeRequest] = {}
        self._next_id = 0
        self._draining = False
        self._stopped = False
        self._executor = threading.Thread(target=self._executor_loop,
                                          name="repro-serve-executor",
                                          daemon=True)
        self._executor.start()

    # -- client API ------------------------------------------------------
    def submit(self, inputs) -> ServeRequest:
        """Admit one request: ``(rows,) + input_shape`` (or one bare
        sample, auto-wrapped).  Returns its handle; raises
        :class:`QueueFull` under backpressure and :class:`ServerClosed`
        once draining."""
        inputs = np.ascontiguousarray(inputs, dtype=self.dtype)
        if self.input_shape is not None and \
                inputs.shape == self.input_shape:
            inputs = inputs[None]
        if self.input_shape is not None and \
                inputs.shape[1:] != self.input_shape:
            raise ValueError(
                f"request shape {inputs.shape} != (rows, "
                f"{', '.join(map(str, self.input_shape))})")
        if inputs.ndim < 2:
            raise ValueError(
                f"request must be (rows,) + sample shape, "
                f"got {inputs.shape}")
        now = time.monotonic()
        with self._cond:
            if self._draining:
                raise ServerClosed("server is draining; not accepting "
                                   "new requests")
            if len(inputs) > self._batcher.max_queue:
                self.stats.record_reject()
                raise QueueFull(
                    f"request of {len(inputs)} rows exceeds the whole "
                    f"admission queue ({self._batcher.max_queue} rows)",
                    permanent=True)
            handle = ServeRequest(self._next_id, len(inputs), now)
            if not self._batcher.submit(handle.id, inputs, now):
                self.stats.record_reject()
                raise QueueFull(
                    f"admission queue full "
                    f"({self._batcher.depth}/{self._batcher.max_queue} "
                    "rows queued); retry")
            self._next_id += 1
            self._handles[handle.id] = handle
            self.stats.record_admit(self._batcher.depth)
            self._cond.notify()
        return handle

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._batcher.depth

    @property
    def draining(self) -> bool:
        return self._draining

    # -- lifecycle -------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None):
        """Stop the daemon.  ``drain=True`` (the SIGTERM contract) serves
        every admitted request before the executor exits; ``drain=False``
        fails queued requests with :class:`ServerClosed`."""
        with self._cond:
            if self._stopped:
                return
            self._draining = True
            if not drain:
                for flush in self._batcher.drain(time.monotonic()):
                    for s in flush.slices:
                        if s.final:
                            handle = self._handles.pop(s.request_id)
                            handle._fail(ServerClosed("server stopped"))
            self._cond.notify_all()
        self._executor.join(timeout)
        self._stopped = True

    # -- executor --------------------------------------------------------
    def _executor_loop(self):
        while True:
            with self._cond:
                while True:
                    if self._draining:
                        if self._batcher.n_waiting == 0:
                            return
                        break                    # drain: flush regardless
                    now = time.monotonic()
                    if self._batcher.ready(now):
                        break
                    deadline = self._batcher.next_deadline()
                    self._cond.wait(
                        None if deadline is None
                        else max(0.0, deadline - now))
                flush = self._batcher.flush(time.monotonic())
                depth = self._batcher.depth
            if flush is not None:
                self._execute(flush, depth)

    def _execute(self, flush, depth: int) -> None:
        try:
            scores = self.plan.scores(flush.inputs)[:flush.rows]
        except Exception as error:     # deliver the failure, keep serving
            with self._cond:
                for s in flush.slices:
                    handle = self._handles.pop(s.request_id, None) \
                        if s.final else self._handles.get(s.request_id)
                    if handle is not None:
                        handle._fail(error)
            return
        now = time.monotonic()
        self.stats.record_batch(flush.rows, depth)
        with self._cond:
            handles = [(s, self._handles.pop(s.request_id)
                        if s.final else self._handles[s.request_id])
                       for s in flush.slices]
        for s, handle in handles:
            handle._deliver(s.offset, scores[s.row_start:s.row_stop], now)
            if s.final:
                self.stats.record_complete(handle.latency)


def _require_deterministic(plan) -> None:
    """Serving demuxes one batched evaluation into per-request answers;
    that is only bit-identical to solo evaluation when every substrate op
    is deterministic (the noise-free fast path).  Noisy plans draw from
    controller-owned RNG streams whose consumption order depends on
    batch composition — refuse them loudly."""
    for op in getattr(plan, "layer_ops", []):
        controller = getattr(op.executor, "controller", None)
        if controller is not None and not controller.fast_path:
            raise ValueError(
                "cannot serve a noisy plan: controller "
                f"{controller!r} is off the deterministic fast path "
                "(serving requires noise-free configs so batched == "
                "per-request bit-identically)")


class HttpFront:
    """A minimal stdlib HTTP/1.1 front over a :class:`PlanServer`.

    Endpoints::

        POST /v1/predict   {"inputs": [[...], ...]} ->
                           {"scores": [[...]], "labels": [...],
                            "latency_ms": ...}
        GET  /v1/stats     counters + latency percentiles (JSON)
        GET  /healthz      {"status": "ok" | "draining"}

    Backpressure surfaces as 429 (retryable) / 413 (request larger than
    the queue); a draining daemon answers 503.  One thread per in-flight
    connection (stdlib ``ThreadingHTTPServer``); all of them funnel into
    the single executor through the admission queue.
    """

    def __init__(self, server: PlanServer, host: str = "127.0.0.1",
                 port: int = 0, request_timeout: float = 30.0):
        self.server = server
        self.request_timeout = float(request_timeout)
        front = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Responses are written as several small sends (status,
            # headers, body); with Nagle on, those interact with delayed
            # ACKs into ~40 ms stalls per request on loopback.
            disable_nagle_algorithm = True

            def log_message(self, *args):   # quiet: stats, not access logs
                pass

            def _reply(self, code: int, payload: dict) -> None:
                body = json.dumps(payload).encode()
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                if self.path == "/healthz":
                    draining = front.server.draining
                    self._reply(503 if draining else 200,
                                {"status": "draining" if draining
                                 else "ok"})
                elif self.path == "/v1/stats":
                    self._reply(200, front.server.stats.snapshot())
                else:
                    self._reply(404, {"error": f"no route {self.path}"})

            def do_POST(self):
                if self.path != "/v1/predict":
                    self._reply(404, {"error": f"no route {self.path}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    payload = json.loads(self.rfile.read(length))
                    inputs = payload["inputs"]
                except (ValueError, KeyError) as error:
                    self._reply(400, {"error": f"bad request: {error}"})
                    return
                try:
                    handle = front.server.submit(inputs)
                except QueueFull as error:
                    self._reply(413 if error.permanent else 429,
                                {"error": str(error)})
                    return
                except ServerClosed as error:
                    self._reply(503, {"error": str(error)})
                    return
                except ValueError as error:
                    self._reply(400, {"error": str(error)})
                    return
                if not handle.wait(front.request_timeout):
                    self._reply(504, {"error": "timed out waiting for "
                                               "the executor"})
                    return
                if handle.error is not None:
                    self._reply(500, {"error": str(handle.error)})
                    return
                self._reply(200, {
                    "scores": handle.scores.tolist(),
                    "labels": handle.labels.tolist(),
                    "latency_ms": handle.latency * 1e3,
                })

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpFront":
        """Serve in a background thread (returns immediately)."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve-http",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the transport, then drain (or drop) the execution core."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.server.close(drain=drain)
