"""Micro-batch coalescing: the pure core of the serving daemon.

The paper's deployment target is a continuous stream of small
classification requests (one EEG/ECG window each) hitting an RRAM chip
whose scan cost is dominated by *dispatch*, not arithmetic — a 256-batch
scan costs barely more than a 1-batch scan.  The daemon therefore
coalesces concurrent requests into one batch per kernel dispatch.  This
module is that coalescing logic and nothing else: no threads, no clocks,
no sockets.  Time enters exclusively through ``now`` parameters, so every
policy decision (admit/reject, flush-now/flush-later, split/carry) is
deterministic and unit-testable.

Policy
------
* **Admission** is bounded: a request whose rows would push the queued
  total past ``max_queue`` is rejected whole (never partially admitted),
  while everything already queued keeps its place — rejection is strictly
  newest-first, the backpressure contract of the HTTP 429 front.
* **Flush** happens when the queue holds ``max_batch`` rows (fill) or the
  oldest waiting request has aged past ``window`` seconds (latency
  bound), whichever comes first.  A flush takes up to ``max_batch`` rows
  in strict FIFO order, splitting a request across flushes when it is
  larger than the batch (each part carries its row offset so the demux
  can reassemble).
* **Padding** (``pad=True``) zero-fills every flush to exactly
  ``max_batch`` rows so the executor always dispatches one fixed batch
  shape; ``rows`` records how many leading rows are real.  Off by
  default — the packed kernels are exact for any N, so fixed shapes only
  buy allocator reuse.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BatchSlice", "Flush", "MicroBatcher"]


@dataclass(frozen=True)
class BatchSlice:
    """One request's share of a flushed batch (the demux directions).

    ``rows[row_start:row_stop]`` of the flush belong to request
    ``request_id`` at row ``offset`` of that request; ``final`` marks the
    slice that completes it (always true unless the request was split
    across flushes).
    """

    request_id: int
    row_start: int
    row_stop: int
    offset: int
    final: bool

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start


@dataclass(frozen=True)
class Flush:
    """One coalesced executor dispatch: inputs plus demux directions.

    ``inputs`` is ``(rows_padded,) + sample_shape`` with the first
    ``rows`` rows real (``rows_padded == rows`` unless the batcher pads);
    ``slices`` partitions those real rows among requests in FIFO order;
    ``oldest_wait`` is how long the oldest row had been queued at flush
    time (the batching-delay component of its latency).
    """

    inputs: np.ndarray
    slices: tuple[BatchSlice, ...]
    rows: int
    oldest_wait: float

    @property
    def fill(self) -> int:
        return self.rows


@dataclass
class _Pending:
    request_id: int
    inputs: np.ndarray
    submitted_at: float
    offset: int = field(default=0)     # rows already flushed (splits)

    @property
    def remaining(self) -> int:
        return len(self.inputs) - self.offset


class MicroBatcher:
    """Bounded admission queue + micro-batch coalescing (pure logic).

    Not thread-safe by design: the server serializes access under its own
    condition variable.  All times are caller-supplied monotonic seconds.
    """

    def __init__(self, max_batch: int = 256, window: float = 200e-6,
                 max_queue: int = 1024, pad: bool = False):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_batch = int(max_batch)
        self.window = float(window)
        self.max_queue = int(max_queue)
        self.pad = bool(pad)
        self._pending: deque[_Pending] = deque()
        self._queued_rows = 0

    # -- introspection ---------------------------------------------------
    @property
    def depth(self) -> int:
        """Queued rows awaiting a flush (the backpressure gauge)."""
        return self._queued_rows

    @property
    def n_waiting(self) -> int:
        """Queued requests (a split request counts until fully taken)."""
        return len(self._pending)

    # -- admission -------------------------------------------------------
    def submit(self, request_id: int, inputs: np.ndarray,
               now: float) -> bool:
        """Admit a request (``(rows,) + sample_shape``) or reject it.

        Returns False — rejecting the *new* request, never evicting a
        queued one — when its rows would overflow ``max_queue``.  A
        request larger than ``max_queue`` can therefore never be
        admitted; the server surfaces that as a permanent 413-style
        error rather than a retryable 429.
        """
        inputs = np.asarray(inputs)
        rows = len(inputs)
        if rows == 0:
            raise ValueError("empty request (zero rows)")
        if self._queued_rows + rows > self.max_queue:
            return False
        self._pending.append(_Pending(request_id, inputs, now))
        self._queued_rows += rows
        return True

    # -- flush policy ----------------------------------------------------
    def ready(self, now: float) -> bool:
        """True when a flush should happen *now*: the queue holds a full
        batch, or the oldest request's window has expired (a zero window
        means any queued request flushes immediately)."""
        if not self._pending:
            return False
        if self._queued_rows >= self.max_batch:
            return True
        return now - self._pending[0].submitted_at >= self.window

    def next_deadline(self) -> float | None:
        """When the oldest queued request's window expires (monotonic
        seconds), or None when the queue is empty — the executor's wait
        timeout."""
        if not self._pending:
            return None
        return self._pending[0].submitted_at + self.window

    def flush(self, now: float) -> Flush | None:
        """Take up to ``max_batch`` rows in FIFO order as one dispatch.

        Splits the request at the boundary when it does not fit whole;
        the remainder keeps its queue position (and its submission time,
        so its window keeps aging from the original arrival).  Returns
        None on an empty queue.
        """
        if not self._pending:
            return None
        parts: list[np.ndarray] = []
        slices: list[BatchSlice] = []
        taken = 0
        oldest_wait = now - self._pending[0].submitted_at
        while self._pending and taken < self.max_batch:
            head = self._pending[0]
            take = min(head.remaining, self.max_batch - taken)
            final = take == head.remaining
            parts.append(head.inputs[head.offset:head.offset + take])
            slices.append(BatchSlice(head.request_id, taken, taken + take,
                                     head.offset, final))
            taken += take
            self._queued_rows -= take
            if final:
                self._pending.popleft()
            else:
                head.offset += take
        inputs = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if self.pad and taken < self.max_batch:
            padded = np.zeros((self.max_batch,) + inputs.shape[1:],
                              dtype=inputs.dtype)
            padded[:taken] = inputs
            inputs = padded
        return Flush(inputs=inputs, slices=tuple(slices), rows=taken,
                     oldest_wait=oldest_wait)

    def drain(self, now: float):
        """Flush repeatedly until the queue is empty (shutdown: every
        admitted request is served, none dropped)."""
        while self._pending:
            yield self.flush(now)

    def __repr__(self) -> str:
        return (f"MicroBatcher(max_batch={self.max_batch}, "
                f"window={self.window:g}, max_queue={self.max_queue}, "
                f"depth={self.depth})")
