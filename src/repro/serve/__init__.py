"""Always-on inference serving: compiled plans behind a micro-batching
daemon.

The offline entry points (``repro deploy``, the examples) pay artifact
load + kernel dispatch per call; this package keeps one or more
:class:`~repro.runtime.CompiledModel` instances resident and coalesces
concurrent requests into batched dispatches onto the noise-free
packed/stacked kernels — the throughput lever the hot-path benchmarks
point at (a 256-batch scan costs barely more than a 1-batch scan).
Multi-model bundles serve behind one daemon with per-model routing
(``model=`` / ``POST /v1/predict {"model": ...}``), per-model stats and
cross-tenant flush coalescing in the single executor.

Layers: :mod:`repro.serve.batcher` (pure admission + coalescing policy),
:mod:`repro.serve.server` (execution core + HTTP transport + lifecycle),
:mod:`repro.serve.stats` (per-model counters with shared latency
percentiles), :mod:`repro.serve.client` (keep-alive client + concurrent
load generator).  ``python -m repro serve <artifact.npz>`` is the CLI
front door.
"""

from repro.serve.batcher import BatchSlice, Flush, MicroBatcher
from repro.serve.client import ServeClient, ServeHTTPError, fire
from repro.serve.server import (HttpFront, PlanServer, QueueFull,
                                ServeRequest, ServerClosed, UnknownModel)
from repro.serve.stats import ServeStats, render_tenant_table

__all__ = [
    "BatchSlice",
    "Flush",
    "MicroBatcher",
    "PlanServer",
    "HttpFront",
    "ServeRequest",
    "QueueFull",
    "ServerClosed",
    "UnknownModel",
    "ServeStats",
    "render_tenant_table",
    "ServeClient",
    "ServeHTTPError",
    "fire",
]
