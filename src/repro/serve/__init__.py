"""Always-on inference serving: compiled plans behind a micro-batching
daemon.

The offline entry points (``repro deploy``, the examples) pay artifact
load + kernel dispatch per call; this package keeps one
:class:`~repro.runtime.CompiledModel` resident and coalesces concurrent
requests into batched dispatches onto the noise-free packed/stacked
kernels — the throughput lever the hot-path benchmarks point at (a
256-batch scan costs barely more than a 1-batch scan).

Layers: :mod:`repro.serve.batcher` (pure admission + coalescing policy),
:mod:`repro.serve.server` (execution core + HTTP transport + lifecycle),
:mod:`repro.serve.stats` (per-model counters with shared latency
percentiles), :mod:`repro.serve.client` (keep-alive client + concurrent
load generator).  ``python -m repro serve <artifact.npz>`` is the CLI
front door.
"""

from repro.serve.batcher import BatchSlice, Flush, MicroBatcher
from repro.serve.client import ServeClient, ServeHTTPError, fire
from repro.serve.server import (HttpFront, PlanServer, QueueFull,
                                ServeRequest, ServerClosed)
from repro.serve.stats import ServeStats

__all__ = [
    "BatchSlice",
    "Flush",
    "MicroBatcher",
    "PlanServer",
    "HttpFront",
    "ServeRequest",
    "QueueFull",
    "ServerClosed",
    "ServeStats",
    "ServeClient",
    "ServeHTTPError",
    "fire",
]
