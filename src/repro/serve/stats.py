"""Per-model serving counters: what the daemon promises, measured.

One :class:`ServeStats` instance per served model.  Counters are updated
from both the transport threads (admissions, rejections) and the executor
thread (batches, completions), so every update holds the instance lock;
latencies go into a bounded ring buffer and the tail percentiles come
from the shared :func:`repro.metrics.latency_summary` helper — the same
math ``repro deploy`` and the load-generator benchmark report.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.metrics import latency_summary

__all__ = ["ServeStats", "render_tenant_table"]


def render_tenant_table(snapshots) -> str:
    """One row per served model — the multi-tenant daemon's exit table.

    ``snapshots`` is a list of :meth:`ServeStats.snapshot` dicts; the
    latency columns come from the same ring-buffer percentiles the
    per-model ``GET /v1/stats`` payload reports.
    """
    header = (f"{'model':<12s} {'requests':>9s} {'rejected':>9s} "
              f"{'completed':>10s} {'batches':>8s} {'fill':>7s} "
              f"{'p50 ms':>9s} {'p95 ms':>9s} {'p99 ms':>9s}")
    lines = ["per-model serve stats", "-" * len(header), header]
    for s in snapshots:
        lat = s["latency_ms"]
        lines.append(
            f"{s['model']:<12s} {s['requests']:>9d} {s['rejected']:>9d} "
            f"{s['completed']:>10d} {s['batches']:>8d} "
            f"{s['mean_fill']:>7.1f} {lat['p50']:>9.3f} "
            f"{lat['p95']:>9.3f} {lat['p99']:>9.3f}")
    return "\n".join(lines)


class ServeStats:
    """Thread-safe request/batch/latency counters for one served model."""

    def __init__(self, model: str = "model", sample_buffer: int = 2048):
        if sample_buffer < 1:
            raise ValueError(
                f"sample_buffer must be >= 1, got {sample_buffer}")
        self.model = model
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=int(sample_buffer))
        self._requests = 0          # admitted
        self._rejected = 0          # bounced off the full queue
        self._completed = 0         # responses demuxed
        self._rows = 0              # samples executed (real rows only)
        self._batches = 0           # executor dispatches
        self._queue_depth = 0       # rows waiting right now (gauge)

    # -- updates (each from exactly one call site) -----------------------
    def record_admit(self, queue_depth: int) -> None:
        with self._lock:
            self._requests += 1
            self._queue_depth = queue_depth

    def record_reject(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_batch(self, rows: int, queue_depth: int) -> None:
        with self._lock:
            self._batches += 1
            self._rows += rows
            self._queue_depth = queue_depth

    def record_complete(self, latency_s: float) -> None:
        with self._lock:
            self._completed += 1
            self._latencies.append(latency_s)

    # -- reads -----------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready point-in-time view of every counter.

        ``mean_fill`` is rows per executor dispatch — the micro-batching
        win in one number; latencies are reported in milliseconds from
        the ring buffer (zeros when nothing completed yet).
        """
        with self._lock:
            samples = list(self._latencies)
            stats = {
                "model": self.model,
                "requests": self._requests,
                "rejected": self._rejected,
                "completed": self._completed,
                "rows": self._rows,
                "batches": self._batches,
                "queue_depth": self._queue_depth,
                "mean_fill": (self._rows / self._batches)
                if self._batches else 0.0,
            }
        if samples:
            tail = latency_summary([s * 1e3 for s in samples])
            stats.update(latency_ms={"mean": tail.mean, "p50": tail.p50,
                                     "p95": tail.p95, "p99": tail.p99},
                         latency_samples=tail.count)
        else:
            stats.update(latency_ms={"mean": 0.0, "p50": 0.0, "p95": 0.0,
                                     "p99": 0.0},
                         latency_samples=0)
        return stats

    def render(self) -> str:
        """One human-readable block (the daemon's shutdown report)."""
        s = self.snapshot()
        lat = s["latency_ms"]
        header = f"serve stats [{s['model']}]"
        return "\n".join([
            header, "-" * len(header),
            f"requests   {s['requests']:>10d}   "
            f"rejected {s['rejected']:>8d}   completed {s['completed']:>8d}",
            f"batches    {s['batches']:>10d}   "
            f"mean fill {s['mean_fill']:>7.1f}   "
            f"queue depth {s['queue_depth']:>6d}",
            f"latency    p50 {lat['p50']:8.3f} ms   "
            f"p95 {lat['p95']:8.3f} ms   p99 {lat['p99']:8.3f} ms   "
            f"(n={s['latency_samples']})",
        ])

    def __repr__(self) -> str:
        s = self.snapshot()
        return (f"ServeStats(model={self.model!r}, "
                f"requests={s['requests']}, batches={s['batches']}, "
                f"mean_fill={s['mean_fill']:.1f})")
