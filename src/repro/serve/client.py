"""HTTP client + concurrent load generator for the serving daemon.

:class:`ServeClient` is a thin keep-alive JSON client over one
``http.client.HTTPConnection`` (one instance per thread — the connection
is not shared).  :func:`fire` drives a daemon with N concurrent
closed-loop clients and collects every response; ``python -m
repro.serve.client`` wraps that as the CI smoke: boot a daemon
elsewhere, point this at it with the golden fixture artifact, and it
verifies every served answer bit-for-bit against offline
``CompiledModel.predict`` before exiting 0.
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
import time
import urllib.parse

import numpy as np

__all__ = ["ServeClient", "ServeHTTPError", "fire"]


class ServeHTTPError(RuntimeError):
    """A non-200 daemon response (the status is the backpressure signal:
    429 retryable queue-full, 413 oversized, 503 draining)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """One keep-alive connection to a ``repro serve`` daemon."""

    def __init__(self, url: str, timeout: float = 30.0,
                 retries: int = 0, backoff: float = 0.002):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http":
            raise ValueError(f"expected an http:// url, got {url!r}")
        self.url = url
        self.retries = int(retries)
        self.backoff = float(backoff)
        self._conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port or 80, timeout=timeout)

    def _request(self, method: str, path: str, payload=None) -> dict:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = json.loads(response.read())
        except (http.client.HTTPException, ConnectionError):
            # A dropped keep-alive connection (daemon restarted mid-run):
            # reconnect once, then let real errors surface.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = json.loads(response.read())
        if response.status != 200:
            raise ServeHTTPError(response.status,
                                 data.get("error", "unknown error"))
        return data

    def predict(self, inputs: np.ndarray,
                model: str | None = None) -> dict:
        """POST one request; retries queue-full (429) with backoff when
        ``retries > 0``.  ``model`` routes to one tenant of a
        multi-model daemon (optional when a single model is served).
        Returns ``{"scores": ndarray, "labels": ndarray,
        "model": str | None, "latency_ms": float}``."""
        payload = {"inputs": np.asarray(inputs).tolist()}
        if model is not None:
            payload["model"] = str(model)
        for attempt in range(self.retries + 1):
            try:
                data = self._request("POST", "/v1/predict", payload)
                break
            except ServeHTTPError as error:
                if error.status != 429 or attempt == self.retries:
                    raise
                time.sleep(self.backoff * (attempt + 1))
        return {"scores": np.asarray(data["scores"], dtype=np.float64),
                "labels": np.asarray(data["labels"], dtype=np.int64),
                "model": data.get("model"),
                "latency_ms": float(data["latency_ms"])}

    def models(self) -> list[dict]:
        """The daemon's served models and their contracts."""
        return self._request("GET", "/v1/models")["models"]

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def close(self) -> None:
        self._conn.close()


def fire(url: str, requests: list, threads: int = 8,
         retries: int = 200, timeout: float = 30.0) -> list[dict]:
    """Fire ``requests`` at a daemon from ``threads`` concurrent
    closed-loop clients; returns one response dict per request, in
    request order.  Each request is either a bare input array or a
    ``(model_name, array)`` pair for a multi-model daemon (a mixed
    burst).  Worker failures re-raise in the caller."""
    results: list = [None] * len(requests)
    errors: list[Exception] = []
    cursor = iter(range(len(requests)))
    lock = threading.Lock()

    def worker():
        client = ServeClient(url, timeout=timeout, retries=retries)
        try:
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                request = requests[index]
                if isinstance(request, tuple):
                    model, inputs = request
                    results[index] = client.predict(inputs, model=model)
                else:
                    results[index] = client.predict(request)
        except Exception as error:      # surface on the caller's thread
            with lock:
                errors.append(error)
        finally:
            client.close()

    pool = [threading.Thread(target=worker, daemon=True)
            for _ in range(max(1, int(threads)))]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]
    return results


def _synthetic_requests(artifact, count: int, seed: int,
                        rows: int = 1) -> list[np.ndarray]:
    """Per-request synthetic inputs from the artifact's recorded geometry
    (the ``repro deploy`` convention: bits for ``bits`` fronts, floats
    otherwise)."""
    shape = artifact.input_shape
    if shape is None:
        raise SystemExit("artifact records no input geometry")
    rng = np.random.default_rng(seed)
    if artifact.ops[0]["op"] == "bits":
        return [rng.integers(0, 2, size=(rows,) + shape).astype(np.uint8)
                for _ in range(count)]
    return [rng.standard_normal((rows,) + shape) for _ in range(count)]


def main(argv=None) -> int:
    """CI smoke client: concurrent requests, bit-exact verification."""
    parser = argparse.ArgumentParser(
        description="load-generate against a repro serve daemon and "
                    "verify responses bit-for-bit against offline "
                    "predict")
    parser.add_argument("--url", required=True,
                        help="daemon base url, e.g. http://127.0.0.1:8373")
    parser.add_argument("--artifact", required=True,
                        help="the plan artifact the daemon is serving "
                             "(for input geometry + offline reference)")
    parser.add_argument("--model", default=None,
                        help="tenant name when the daemon serves a "
                             "multi-model bundle (also selects the "
                             "plan inside a bundle artifact)")
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--rows", type=int, default=1,
                        help="samples per request (default 1)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default="packed",
                        help="offline reference backend (default packed; "
                             "accepts the 'ideal-rram'/'sharded' aliases "
                             "of the serve command)")
    args = parser.parse_args(argv)

    from repro.io import load_compiled, load_plan

    artifact = load_plan(args.artifact, model=args.model)
    requests = _synthetic_requests(artifact, args.requests, args.seed,
                                   args.rows)
    tagged = [(args.model, r) for r in requests] \
        if args.model is not None else requests
    t0 = time.perf_counter()
    responses = fire(args.url, tagged, threads=args.threads)
    elapsed = time.perf_counter() - t0

    backend = args.backend
    if backend in ("ideal-rram", "sharded"):   # the serve CLI aliases
        from repro.rram import AcceleratorConfig
        from repro.runtime import RRAMBackend, ShardedRRAMBackend
        config = AcceleratorConfig(ideal=True)
        backend = RRAMBackend(config) if backend == "ideal-rram" \
            else ShardedRRAMBackend(config)
    plan = load_compiled(artifact, backend=backend)
    mismatches = 0
    for request, response in zip(requests, responses):
        expected = plan.scores(request)
        if not np.array_equal(expected, response["scores"]) or \
                not np.array_equal(expected.argmax(axis=1),
                                   response["labels"]):
            mismatches += 1
    rps = len(requests) / elapsed
    print(f"{len(requests)} requests x {args.rows} row(s) over "
          f"{args.threads} connections: {rps:.0f} req/s, "
          f"{mismatches} mismatches vs offline predict")
    stats = ServeClient(args.url).stats()
    print(f"daemon: {stats['batches']} batches, mean fill "
          f"{stats['mean_fill']:.1f}, p99 "
          f"{stats['latency_ms']['p99']:.2f} ms")
    return 1 if mismatches else 0


if __name__ == "__main__":
    raise SystemExit(main())
