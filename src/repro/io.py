"""Model and deployment persistence.

The paper's deployment flow is two-phase: weights are trained off-chip,
then "programming occurs before the use of the inference circuit and is
managed by a memory controller" (§II-B).  That hand-off needs an artefact
format.  This module provides two:

* :func:`save_model` / :func:`load_model` — training checkpoints: the full
  ``state_dict`` (parameters and buffers) in a compressed ``.npz`` with a
  metadata record (library version, model class, parameter count) so stale
  or mismatched checkpoints fail loudly;
* :func:`save_folded_classifier` / :func:`load_folded_classifier` — the
  *hardware* artefact: folded weight bits and integer thresholds, i.e.
  exactly what the memory controller programs.  Loading reconstructs the
  folded layers without needing the training stack at all.

Everything is plain numpy ``.npz`` — no pickle, so artefacts are safe to
load from untrusted sources and remain readable by any numpy.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro import __version__
from repro.nn.binary import FoldedBinaryDense, FoldedOutputDense
from repro.nn.module import Module

__all__ = ["save_model", "load_model", "save_folded_classifier",
           "load_folded_classifier"]

_META_KEY = "__repro_meta__"


def _write_npz(path, arrays: dict[str, np.ndarray], meta: dict) -> None:
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def _read_npz(path) -> tuple[dict[str, np.ndarray], dict]:
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
        if _META_KEY not in data.files:
            raise ValueError(
                f"{path} is not a repro artefact (missing metadata record)")
        meta = json.loads(bytes(data[_META_KEY]).decode("utf-8"))
    return arrays, meta


def save_model(model: Module, path) -> None:
    """Write a training checkpoint: every parameter and buffer.

    The state keys are the ``named_parameters`` / ``named_buffers`` paths,
    so the checkpoint is portable across processes but tied to the model
    architecture (loading validates class name and shapes).
    """
    meta = {
        "kind": "model",
        "repro_version": __version__,
        "model_class": type(model).__name__,
        "num_parameters": model.num_parameters(),
    }
    _write_npz(path, model.state_dict(), meta)


def load_model(model: Module, path) -> Module:
    """Restore a checkpoint into an already-constructed model.

    The model must be the same architecture (class and tensor shapes) the
    checkpoint was saved from; mismatches raise instead of silently
    mis-assigning weights.
    """
    arrays, meta = _read_npz(path)
    if meta.get("kind") != "model":
        raise ValueError(
            f"{path} holds a {meta.get('kind')!r} artefact, not a model "
            "checkpoint")
    if meta["model_class"] != type(model).__name__:
        raise ValueError(
            f"checkpoint was saved from {meta['model_class']}, cannot load "
            f"into {type(model).__name__}")
    model.load_state_dict(arrays)
    return model


def save_folded_classifier(hidden: list[FoldedBinaryDense],
                           output: FoldedOutputDense, path) -> None:
    """Write the hardware programming artefact for a folded classifier.

    Stores each hidden layer's weight bits and thresholds plus the output
    layer's bits/scale/offset — the complete content a memory controller
    needs (what :func:`repro.rram.fold_classifier` produces).
    """
    arrays: dict[str, np.ndarray] = {}
    for index, layer in enumerate(hidden):
        prefix = f"hidden{index}."
        arrays[prefix + "weight_bits"] = layer.weight_bits
        arrays[prefix + "theta"] = layer.theta
        arrays[prefix + "gamma_sign"] = layer.gamma_sign
        arrays[prefix + "beta_sign"] = layer.beta_sign
    arrays["output.weight_bits"] = output.weight_bits
    arrays["output.scale"] = output.scale
    arrays["output.offset"] = output.offset
    meta = {
        "kind": "folded_classifier",
        "repro_version": __version__,
        "n_hidden": len(hidden),
        "layer_shapes": [list(l.weight_bits.shape) for l in hidden]
        + [list(output.weight_bits.shape)],
    }
    _write_npz(path, arrays, meta)


def load_folded_classifier(path) -> tuple[list[FoldedBinaryDense],
                                          FoldedOutputDense]:
    """Reconstruct the folded layers from a programming artefact."""
    arrays, meta = _read_npz(path)
    if meta.get("kind") != "folded_classifier":
        raise ValueError(
            f"{path} holds a {meta.get('kind')!r} artefact, not a folded "
            "classifier")
    hidden = []
    for index in range(meta["n_hidden"]):
        prefix = f"hidden{index}."
        hidden.append(FoldedBinaryDense(
            weight_bits=arrays[prefix + "weight_bits"],
            theta=arrays[prefix + "theta"],
            gamma_sign=arrays[prefix + "gamma_sign"],
            beta_sign=arrays[prefix + "beta_sign"]))
    output = FoldedOutputDense(
        weight_bits=arrays["output.weight_bits"],
        scale=arrays["output.scale"],
        offset=arrays["output.offset"])
    return hidden, output
