"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Classic SGD: ``v = mu*v + g``; ``p -= lr * v``."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update
