"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable

from repro.nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds a parameter list and a learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
