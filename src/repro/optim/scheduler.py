"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR"]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * (
            self.gamma ** (self.epoch // self.step_size))
        return self.optimizer.lr


class CosineAnnealingLR:
    """Cosine decay from the base learning rate to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 eta_min: float = 0.0):
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        cos = 0.5 * (1.0 + math.cos(math.pi * self.epoch / self.total_epochs))
        self.optimizer.lr = self.eta_min + (self.base_lr - self.eta_min) * cos
        return self.optimizer.lr
