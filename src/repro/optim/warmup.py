"""Linear warmup wrapped around any schedule.

Large-batch / from-scratch training (the paper's 255-epoch MobileNet run)
conventionally ramps the learning rate up over the first epochs before the
main decay schedule takes over; binarized training in particular benefits
because early STE gradients are noisy.
"""

from __future__ import annotations

from repro.optim.optimizer import Optimizer

__all__ = ["WarmupLR"]


class WarmupLR:
    """Ramp linearly from ``start_factor * base_lr`` to ``base_lr`` over
    ``warmup_epochs``, then delegate to an optional inner schedule.

    The inner schedule (e.g. :class:`~repro.optim.CosineAnnealingLR`) must
    be constructed on the same optimizer; its own epoch counter only
    advances after the warmup completes.
    """

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 after=None, start_factor: float = 0.1):
        if warmup_epochs <= 0:
            raise ValueError(
                f"warmup_epochs must be positive, got {warmup_epochs}")
        if not 0.0 < start_factor <= 1.0:
            raise ValueError(
                f"start_factor must be in (0, 1], got {start_factor}")
        self.optimizer = optimizer
        self.warmup_epochs = warmup_epochs
        self.after = after
        self.start_factor = start_factor
        self.base_lr = optimizer.lr
        self.epoch = 0
        # Apply the initial warmup factor immediately so epoch 0 trains at
        # the reduced rate.
        optimizer.lr = self.base_lr * start_factor

    def step(self) -> float:
        self.epoch += 1
        if self.epoch < self.warmup_epochs:
            fraction = self.epoch / self.warmup_epochs
            factor = self.start_factor + (1.0 - self.start_factor) * fraction
            self.optimizer.lr = self.base_lr * factor
            return self.optimizer.lr
        if self.after is None:
            self.optimizer.lr = self.base_lr
            return self.optimizer.lr
        if self.epoch == self.warmup_epochs:
            # Re-anchor the inner schedule at the full rate, then take its
            # first step: the ramp ends exactly where the decay begins, so
            # no epoch ever trains at an un-decayed base_lr (the historic
            # boundary bug trained one full epoch at base_lr).
            self.after.base_lr = self.base_lr
        return self.after.step()
