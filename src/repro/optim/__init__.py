"""Gradient-descent optimizers used by the paper's training recipes.

The EEG and ECG models are trained with Adam (§III-A, §III-B) and the
MobileNet model with SGD + momentum (§IV).
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.scheduler import StepLR, CosineAnnealingLR
from repro.optim.warmup import WarmupLR
from repro.optim.clip import clip_grad_norm

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineAnnealingLR",
           "WarmupLR", "clip_grad_norm"]
