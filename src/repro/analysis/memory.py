"""Model memory accounting (paper Table IV).

The paper compares, per model:

* total and classifier-only parameter counts;
* model size at 32-bit and 8-bit weight precision;
* the fraction of memory saved by binarizing *only the classifier*,
  against both the 32-bit and the 8-bit reference.

The saving formulas follow directly from the paper's worked example for the
EEG model (0.31 M parameters, 64 % saving vs 32-bit, 57.8 % vs 8-bit):

    saving_b = 1 - (feat * b + cls * 1) / (total * b)

for a reference precision of ``b`` bits — i.e. convolutional weights keep
``b`` bits while classifier weights drop to one.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryBreakdown", "model_memory", "format_bytes",
           "equivalent_bits"]


def format_bytes(n_bytes: float) -> str:
    """Human formatting matching the paper's MB/KB style."""
    if n_bytes >= 1024 ** 2:
        return f"{n_bytes / 1024 ** 2:.2f}MB"
    return f"{n_bytes / 1024:.0f}KB"


@dataclass
class MemoryBreakdown:
    """Memory accounting for one model (one row of Table IV).

    ``binary_classifier_params`` covers the MobileNet case where the
    binarized classifier is a *replacement* of different size (two layers,
    5.7 M binary weights) rather than a binarization of the original one;
    when ``None`` the original classifier is binarized in place (the EEG
    and ECG rows).
    """

    name: str
    feature_params: int
    classifier_params: int
    binary_classifier_params: int | None = None

    @property
    def total_params(self) -> int:
        return self.feature_params + self.classifier_params

    @property
    def effective_binary_classifier_params(self) -> int:
        if self.binary_classifier_params is not None:
            return self.binary_classifier_params
        return self.classifier_params

    def size_bytes(self, bits: int = 32) -> float:
        """Model size with every weight at ``bits`` precision."""
        return self.total_params * bits / 8.0

    def binarized_classifier_bytes(self, feature_bits: int = 32) -> float:
        """Size with real-precision features and a 1-bit classifier."""
        return (self.feature_params * feature_bits
                + self.effective_binary_classifier_params) / 8.0

    def classifier_binarization_saving(self, reference_bits: int = 32
                                       ) -> float:
        """Fraction of memory saved by binarizing only the classifier,
        relative to a model stored entirely at ``reference_bits``."""
        full = self.size_bytes(reference_bits)
        mixed = self.binarized_classifier_bytes(reference_bits)
        return 1.0 - mixed / full

    def classifier_fraction(self) -> float:
        return self.classifier_params / self.total_params

    def table_row(self) -> tuple[str, ...]:
        """(model, total, classifier, size 32/8-bit, saving 32/8-bit)."""
        return (
            self.name,
            f"{self.total_params / 1e6:.2f}M",
            f"{self.classifier_params / 1e6:.2f}M",
            f"{format_bytes(self.size_bytes(32))} / "
            f"{format_bytes(self.size_bytes(8))}",
            f"{100 * self.classifier_binarization_saving(32):.1f}% / "
            f"{100 * self.classifier_binarization_saving(8):.1f}%",
        )


def model_memory(name: str, model,
                 binary_classifier_params: int | None = None
                 ) -> MemoryBreakdown:
    """Build a breakdown from any model exposing ``feature_parameters`` /
    ``classifier_parameters`` (all three paper models do).

    Pass ``binary_classifier_params`` when the binarized classifier is a
    replacement of different size (MobileNet's two-layer 5.7 M-bit one).
    """
    return MemoryBreakdown(name, model.feature_parameters(),
                           model.classifier_parameters(),
                           binary_classifier_params=binary_classifier_params)


def equivalent_bits(real_breakdown: MemoryBreakdown,
                    bnn_breakdown: MemoryBreakdown,
                    reference_bits: int = 32) -> float:
    """Memory of a fully binarized (possibly filter-augmented) network
    relative to the mixed binarized-classifier model, in 'equivalent bits'.

    Used for the paper's §III-C comparison: "the binarized classifier model
    accuracy is ... better ... compared to those with all-binarized network
    of equivalent number of bits".  Returns the ratio
    (BNN total bits) / (binarized-classifier model total bits).
    """
    bnn_bits = bnn_breakdown.total_params          # 1 bit per weight
    mixed_bits = (real_breakdown.feature_params * reference_bits
                  + real_breakdown.classifier_params)
    return bnn_bits / mixed_bits
