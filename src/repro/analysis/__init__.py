"""Memory-footprint and quantization analysis (paper Table IV)."""

from repro.analysis.memory import (MemoryBreakdown, model_memory,
                                   format_bytes, equivalent_bits)
from repro.analysis.quantization import (quantize_array,
                                         quantize_model_weights,
                                         quantization_error)
from repro.analysis.tradeoff import (TradeoffPoint, pareto_frontier,
                                     accuracy_at_budget, TradeoffStudy)
from repro.analysis.lifetime import (interpolate_accuracy,
                                     accuracy_vs_cycles, usable_cycles)

__all__ = [
    "MemoryBreakdown", "model_memory", "format_bytes", "equivalent_bits",
    "quantize_array", "quantize_model_weights", "quantization_error",
    "TradeoffPoint", "pareto_frontier", "accuracy_at_budget",
    "TradeoffStudy",
    "interpolate_accuracy", "accuracy_vs_cycles", "usable_cycles",
]
