"""Post-training uniform quantization.

The paper repeatedly uses an "eight-bit quantized network" as the stronger
reference point for its memory savings (§I, §III-C: 8-bit quantization "is
particularly successful in applications, as it usually requires no
retraining").  This module provides that reference: symmetric per-tensor
uniform quantization of trained weights, so benches can report accuracy and
size of the 8-bit model alongside the 32-bit and binarized ones.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["quantize_array", "quantize_model_weights", "quantization_error"]


def quantize_array(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Symmetric uniform quantize-dequantize of an array.

    Maps to integers in ``[-(2^(b-1) - 1), 2^(b-1) - 1]`` with a per-tensor
    scale, then back to floats — the standard post-training scheme.
    """
    if bits < 2:
        raise ValueError("use the binarization layers for 1-bit weights")
    values = np.asarray(values, dtype=float)
    q_max = 2 ** (bits - 1) - 1
    scale = np.abs(values).max()
    if scale == 0:
        return values.copy()
    quantized = np.clip(np.round(values / scale * q_max), -q_max, q_max)
    return quantized * scale / q_max


def quantize_model_weights(model: Module, bits: int = 8) -> Module:
    """Quantize every parameter of a model in place; returns the model.

    Batch-norm parameters are left untouched (they fold into thresholds /
    scales at deployment and are few).
    """
    for name, param in model.named_parameters():
        if "gamma" in name or "beta" in name:
            continue
        param.data = quantize_array(param.data, bits)
    return model


def quantization_error(values: np.ndarray, bits: int = 8) -> float:
    """RMS relative error introduced by quantization (diagnostics)."""
    values = np.asarray(values, dtype=float)
    err = values - quantize_array(values, bits)
    denom = np.sqrt(np.mean(values ** 2))
    if denom == 0:
        return 0.0
    return float(np.sqrt(np.mean(err ** 2)) / denom)
