"""Deployment-lifetime analysis: device wear-out vs BNN error tolerance.

Two results of this repository compose into a question the paper's system
designer actually faces: Fig. 4 gives the bit error rate as a function of
programming cycles, and the fault-injection study (XTRA2) gives classifier
accuracy as a function of bit error rate.  Composing them answers *how many
write cycles a deployed chip survives* before accuracy degrades — with and
without the 2T2R differential read.

:func:`accuracy_vs_cycles` performs the composition; :func:`usable_cycles`
inverts it against an accuracy budget.  Both accept any monotone
``ber_of_cycles`` callable, so the same analysis runs on endurance
(:func:`repro.rram.analytic_ber_1t1r` / ``_2t2r``) or retention
(:func:`repro.rram.retention_ber_1t1r` / ``_2t2r`` via a lambda over
storage time).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["interpolate_accuracy", "accuracy_vs_cycles", "usable_cycles"]


def interpolate_accuracy(ber_grid: np.ndarray, accuracy_grid: np.ndarray
                         ) -> Callable[[np.ndarray], np.ndarray]:
    """Build ``accuracy(ber)`` from fault-injection measurements.

    Interpolation is linear in ``log10(ber)`` (accuracy degrades over
    orders of magnitude of BER, not linearly); a measurement at BER 0 (the
    clean point) anchors everything below the smallest nonzero BER.
    Outside the measured range the curve clamps to the end values.
    """
    ber_grid = np.asarray(ber_grid, dtype=float)
    accuracy_grid = np.asarray(accuracy_grid, dtype=float)
    if ber_grid.shape != accuracy_grid.shape or ber_grid.ndim != 1:
        raise ValueError("ber and accuracy grids must be equal-length 1-D")
    if ber_grid.size < 2:
        raise ValueError("need at least two fault-injection points")
    if np.any(ber_grid < 0):
        raise ValueError("bit error rates cannot be negative")
    order = np.argsort(ber_grid)
    ber_sorted = ber_grid[order]
    acc_sorted = accuracy_grid[order]
    if np.unique(ber_sorted).size != ber_sorted.size:
        raise ValueError("duplicate BER points")

    nonzero = ber_sorted > 0
    log_ber = np.log10(ber_sorted[nonzero])
    acc_nonzero = acc_sorted[nonzero]
    clean_accuracy = acc_sorted[0] if not nonzero[0] else acc_nonzero[0]

    def accuracy(ber):
        ber = np.asarray(ber, dtype=float)
        out = np.empty(ber.shape)
        tiny = ber < ber_sorted[nonzero][0]
        out[tiny] = clean_accuracy
        with np.errstate(divide="ignore"):
            out[~tiny] = np.interp(np.log10(np.maximum(ber[~tiny], 1e-300)),
                                   log_ber, acc_nonzero)
        return out

    return accuracy


def accuracy_vs_cycles(cycles: np.ndarray,
                       ber_of_cycles: Callable[[np.ndarray], np.ndarray],
                       accuracy_of_ber: Callable[[np.ndarray], np.ndarray]
                       ) -> np.ndarray:
    """Compose the device wear curve with the error-tolerance curve."""
    cycles = np.asarray(cycles, dtype=float)
    if np.any(cycles <= 0):
        raise ValueError("cycle counts must be positive")
    return accuracy_of_ber(np.asarray(ber_of_cycles(cycles), dtype=float))


def usable_cycles(accuracy_budget: float,
                  ber_of_cycles: Callable[[np.ndarray], np.ndarray],
                  accuracy_of_ber: Callable[[np.ndarray], np.ndarray],
                  cycle_range: tuple[float, float] = (1e6, 1e12),
                  resolution: int = 400) -> float:
    """Largest cycle count at which accuracy stays >= the budget.

    Scans a log grid over ``cycle_range``.  Returns ``inf`` when the budget
    holds across the whole range (the chip outlives the model), and ``0``
    when even the fresh chip misses it.
    """
    if not 0.0 < accuracy_budget <= 1.0:
        raise ValueError(
            f"accuracy budget must be in (0, 1], got {accuracy_budget}")
    lo, hi = cycle_range
    if not 0 < lo < hi:
        raise ValueError(f"bad cycle range {cycle_range}")
    grid = np.geomspace(lo, hi, resolution)
    acc = accuracy_vs_cycles(grid, ber_of_cycles, accuracy_of_ber)
    ok = acc >= accuracy_budget
    if ok.all():
        return float("inf")
    if not ok[0]:
        return 0.0
    # End of the contiguous good prefix (wear is monotone, so accuracy
    # never recovers after the first failure).
    first_bad = int(np.nonzero(~ok)[0][0])
    return float(grid[first_bad - 1])
