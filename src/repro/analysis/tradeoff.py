"""Accuracy-versus-memory trade-off analysis.

The paper's core algorithmic result is a trade-off statement: full
binarization saves the most memory but costs accuracy even after filter
augmentation, while classifier-only binarization sits on the knee —
real-weight accuracy at a fraction of the memory (Fig. 7, Table IV, and the
§III-C "equivalent amount of memory" comparisons).  This module turns sets
of (memory, accuracy) measurements into that analysis:

* :func:`pareto_frontier` — the non-dominated configurations;
* :func:`accuracy_at_budget` — best achievable accuracy under a byte
  budget (the §III-C "equal memory" question);
* :class:`TradeoffStudy` — collect points, render the frontier, and plot.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TradeoffPoint", "pareto_frontier", "accuracy_at_budget",
           "TradeoffStudy"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One measured configuration."""

    label: str
    memory_bytes: float
    accuracy: float

    def __post_init__(self):
        if self.memory_bytes <= 0:
            raise ValueError(
                f"{self.label!r}: memory must be positive, got "
                f"{self.memory_bytes}")
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(
                f"{self.label!r}: accuracy must be in [0, 1], got "
                f"{self.accuracy}")

    def dominates(self, other: "TradeoffPoint") -> bool:
        """No worse on both axes, strictly better on at least one."""
        no_worse = (self.memory_bytes <= other.memory_bytes
                    and self.accuracy >= other.accuracy)
        better = (self.memory_bytes < other.memory_bytes
                  or self.accuracy > other.accuracy)
        return no_worse and better


def pareto_frontier(points: list[TradeoffPoint]) -> list[TradeoffPoint]:
    """Non-dominated points, sorted by increasing memory.

    A configuration is on the frontier when no other configuration is both
    smaller and at least as accurate (or equal-sized and strictly better).
    """
    if not points:
        raise ValueError("need at least one point")
    frontier = [p for p in points
                if not any(q.dominates(p) for q in points)]
    return sorted(frontier, key=lambda p: (p.memory_bytes, -p.accuracy))


def accuracy_at_budget(points: list[TradeoffPoint],
                       budget_bytes: float) -> TradeoffPoint | None:
    """Best measured configuration fitting in ``budget_bytes``.

    Returns ``None`` when nothing fits — the honest answer, not an
    extrapolation.
    """
    if budget_bytes <= 0:
        raise ValueError(f"budget must be positive, got {budget_bytes}")
    feasible = [p for p in points if p.memory_bytes <= budget_bytes]
    if not feasible:
        return None
    return max(feasible, key=lambda p: (p.accuracy, -p.memory_bytes))


class TradeoffStudy:
    """Accumulate configurations and report the trade-off."""

    def __init__(self, title: str = "Accuracy vs memory"):
        self.title = title
        self.points: list[TradeoffPoint] = []

    def add(self, label: str, memory_bytes: float, accuracy: float
            ) -> "TradeoffStudy":
        self.points.append(TradeoffPoint(label, memory_bytes, accuracy))
        return self

    def frontier(self) -> list[TradeoffPoint]:
        return pareto_frontier(self.points)

    def render(self) -> str:
        from repro.analysis.memory import format_bytes
        from repro.experiments.tables import render_table

        frontier = set(id(p) for p in self.frontier())
        ordered = sorted(self.points, key=lambda p: p.memory_bytes)
        rows = [(p.label, format_bytes(p.memory_bytes),
                 f"{p.accuracy:.1%}",
                 "*" if id(p) in frontier else "")
                for p in ordered]
        return render_table(self.title,
                            ["Configuration", "Memory", "Accuracy",
                             "Pareto"], rows)

    def plot(self, width: int = 60, height: int = 14) -> str:
        from repro.viz import line_plot

        ordered = sorted(self.points, key=lambda p: p.memory_bytes)
        series = {"all": ([p.memory_bytes for p in ordered],
                          [p.accuracy for p in ordered])}
        frontier = self.frontier()
        if len(frontier) > 1:
            series["frontier"] = ([p.memory_bytes for p in frontier],
                                  [p.accuracy for p in frontier])
        return line_plot(series, title=self.title, width=width,
                         height=height, x_log=True,
                         x_label="memory (bytes)", y_label="accuracy")
