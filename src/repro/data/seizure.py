"""Synthetic EEG seizure-detection dataset.

"Epileptic seizure prediction" is one of the paper's motivating edge
applications (§I); the motor-imagery corpus it evaluates on does not cover
it, so this generator supplies the matching workload for the same models:
fixed-length multichannel EEG windows labelled *ictal* (seizure) or
*background*.

The ictal signature follows the classic generalized spike-and-wave
morphology: a ~3 Hz train of sharp spikes riding on slow waves, emerging
over a contiguous group of channels with amplitude that ramps in over the
event — against the same 1/f background used by the motor-imagery
generator.  Detection difficulty is set by the discharge-to-background
amplitude ratio and the fraction of the window the event covers.

Class 0 = background, class 1 = ictal.  Sensitivity on class 1 is the
clinically binding metric (a missed seizure costs more than a false
alarm); the examples report it via :mod:`repro.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.eeg import _pink_noise

__all__ = ["SeizureConfig", "make_seizure_dataset", "spike_wave_train"]


@dataclass
class SeizureConfig:
    """Generation parameters.

    Defaults give a moderately hard task (discharges ~2x the background
    RMS over half the channels); lower ``discharge_amplitude`` for a harder
    benchmark.
    """

    n_trials: int = 400
    n_channels: int = 16
    n_samples: int = 512
    sample_rate: float = 160.0
    spike_rate_hz: float = 3.0        # generalized spike-and-wave rate
    discharge_amplitude: float = 2.0  # ictal amplitude vs background RMS
    focus_fraction: float = 0.5       # fraction of channels recruited
    onset_jitter: float = 0.3         # event start, fraction of the window
    pink_exponent: float = 1.0
    ictal_fraction: float = 0.5       # fraction of trials labelled ictal
    seed: int = 0

    def validate(self) -> "SeizureConfig":
        if self.n_trials < 2 or self.n_channels < 1 or self.n_samples < 16:
            raise ValueError("dataset dimensions too small")
        if not 0.0 < self.ictal_fraction < 1.0:
            raise ValueError(
                f"ictal_fraction must be in (0, 1), got {self.ictal_fraction}")
        if not 0.0 < self.focus_fraction <= 1.0:
            raise ValueError(
                f"focus_fraction must be in (0, 1], got {self.focus_fraction}")
        if self.spike_rate_hz <= 0 or self.sample_rate <= 0:
            raise ValueError("rates must be positive")
        if self.spike_rate_hz >= self.sample_rate / 2:
            raise ValueError("spike rate beyond Nyquist")
        return self


def spike_wave_train(n_samples: int, sample_rate: float,
                     spike_rate_hz: float, onset: int,
                     rng: np.random.Generator) -> np.ndarray:
    """One spike-and-wave discharge waveform starting at ``onset``.

    A slow sinusoid at the discharge rate plus a sharp biphasic spike per
    cycle, with an amplitude ramp over the first two cycles (recruitment);
    zero before ``onset``.
    """
    if not 0 <= onset < n_samples:
        raise ValueError(f"onset {onset} outside [0, {n_samples})")
    t = np.arange(n_samples - onset) / sample_rate
    phase = 2 * np.pi * spike_rate_hz * t
    wave = 0.6 * np.sin(phase)
    # Sharp spike: narrow Gaussian at a fixed phase of every cycle.
    cycle_pos = (spike_rate_hz * t) % 1.0
    spike = np.exp(-0.5 * ((cycle_pos - 0.15) / 0.035) ** 2)
    spike -= 0.5 * np.exp(-0.5 * ((cycle_pos - 0.30) / 0.06) ** 2)
    ramp_cycles = 2.0
    ramp = np.minimum(spike_rate_hz * t / ramp_cycles, 1.0)
    burst = ramp * (wave + spike)
    jittered = burst * rng.uniform(0.9, 1.1)
    out = np.zeros(n_samples)
    out[onset:] = jittered
    return out


def make_seizure_dataset(cfg: SeizureConfig | None = None) -> ArrayDataset:
    """Generate ``(n_trials, n_channels, n_samples)`` labelled windows."""
    cfg = (cfg or SeizureConfig()).validate()
    rng = np.random.default_rng(cfg.seed)

    n_ictal = int(round(cfg.n_trials * cfg.ictal_fraction))
    labels = np.zeros(cfg.n_trials, dtype=np.int64)
    labels[:n_ictal] = 1
    rng.shuffle(labels)

    inputs = np.empty((cfg.n_trials, cfg.n_channels, cfg.n_samples))
    n_focus = max(1, int(round(cfg.focus_fraction * cfg.n_channels)))
    for trial in range(cfg.n_trials):
        background = _pink_noise(rng, cfg.n_channels, cfg.n_samples,
                                 cfg.pink_exponent)
        inputs[trial] = background
        if labels[trial] == 0:
            continue
        onset = int(rng.uniform(0, cfg.onset_jitter) * cfg.n_samples)
        discharge = spike_wave_train(cfg.n_samples, cfg.sample_rate,
                                     cfg.spike_rate_hz, onset, rng)
        # A contiguous recruited channel group with graded involvement.
        start = int(rng.integers(0, cfg.n_channels - n_focus + 1))
        involvement = rng.uniform(0.6, 1.0, size=n_focus)
        inputs[trial, start:start + n_focus] += (
            cfg.discharge_amplitude * involvement[:, None]
            * discharge[None, :])
    return ArrayDataset(inputs, labels)
