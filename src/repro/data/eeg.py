"""Synthetic EEG motor-imagery dataset.

The paper uses the public PhysioNet EEG Motor Movement/Imagery corpus
(refs. [24], [25]): 64 electrodes sampled at 160 Hz, six-second trials, and
the task of deciding whether the subject imagined moving the *left* or
*right* fist.  That corpus cannot ship with an offline reproduction, so this
module generates signals with the same discriminative structure:

* a 1/f ("pink") background per electrode — the broadband EEG floor;
* a mu rhythm (8–12 Hz) over the motor cortex whose power *drops* on the
  hemisphere contralateral to the imagined hand (event-related
  desynchronization, the physiological effect BCI classifiers exploit);
* per-subject variability in mu frequency, amplitude and noise level, and
  per-trial jitter, so cross-validation folds are not trivially separable.

The resulting classification problem — detect which electrode group lost
band power, under low SNR — matches what the paper's network solves, and is
hard enough that binarization effects on accuracy are visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset

__all__ = ["EEGConfig", "make_eeg_dataset", "motor_channel_groups",
           "LEFT_MOTOR_CHANNELS", "RIGHT_MOTOR_CHANNELS"]

# Synthetic 64-channel montage: electrodes 8-15 sit over the left motor
# cortex (C3 neighbourhood), electrodes 48-55 over the right (C4).
LEFT_MOTOR_CHANNELS = tuple(range(8, 16))
RIGHT_MOTOR_CHANNELS = tuple(range(48, 56))


def motor_channel_groups(n_channels: int) -> tuple[tuple[int, ...],
                                                   tuple[int, ...]]:
    """(left, right) motor-cortex electrode groups for any montage size.

    The groups occupy the same relative scalp positions as the 64-channel
    montage (an eighth of the channels each, centred over each hemisphere's
    motor strip), so reduced-channel benchmark configurations keep the same
    spatial structure.
    """
    if n_channels < 8:
        raise ValueError(f"need at least 8 channels, got {n_channels}")
    width = max(1, n_channels // 8)
    left_start = n_channels // 8
    right_start = 3 * n_channels // 4
    left = tuple(range(left_start, left_start + width))
    right = tuple(range(right_start, right_start + width))
    return left, right


@dataclass
class EEGConfig:
    """Generation parameters.

    Paper-scale values: ``n_channels=64``, ``n_samples=960`` (6 s at
    160 Hz), 105 subjects x 42 trials.  Defaults are reduced for tractable
    offline training; the discriminative structure is scale-free.
    """

    n_trials: int = 400
    n_channels: int = 64
    n_samples: int = 960
    sample_rate: float = 160.0
    n_subjects: int = 10
    mu_band: tuple[float, float] = (8.0, 12.0)
    mu_amplitude: float = 1.0
    erd_attenuation: float = 0.55     # contralateral mu power retained
    noise_amplitude: float = 1.0
    pink_exponent: float = 1.0
    seed: int = 0


def _pink_noise(rng: np.random.Generator, n_channels: int, n_samples: int,
                exponent: float) -> np.ndarray:
    """1/f^exponent noise via spectral shaping of white noise."""
    freqs = np.fft.rfftfreq(n_samples)
    scale = np.ones_like(freqs)
    nonzero = freqs > 0
    scale[nonzero] = freqs[nonzero] ** (-exponent / 2.0)
    scale[0] = 0.0
    spectrum = (rng.standard_normal((n_channels, freqs.size))
                + 1j * rng.standard_normal((n_channels, freqs.size))) * scale
    signal = np.fft.irfft(spectrum, n=n_samples, axis=-1)
    std = signal.std(axis=-1, keepdims=True)
    std[std == 0] = 1.0
    return signal / std


def _mu_gain_profile(cfg: EEGConfig) -> np.ndarray:
    """Baseline mu-rhythm gain per channel: strong over both motor areas."""
    gain = np.full(cfg.n_channels, 0.15)
    left, right = motor_channel_groups(cfg.n_channels)
    for ch in left + right:
        gain[ch] = 1.0
    return gain


def make_eeg_dataset(cfg: EEGConfig | None = None) -> ArrayDataset:
    """Generate the dataset.

    Returns trials of shape ``(n_trials, n_channels, n_samples)`` with label
    0 = imagined *left* fist (right-hemisphere ERD) and 1 = imagined *right*
    fist (left-hemisphere ERD).
    """
    cfg = cfg or EEGConfig()
    rng = np.random.default_rng(cfg.seed)
    t = np.arange(cfg.n_samples) / cfg.sample_rate
    base_gain = _mu_gain_profile(cfg)

    # Per-subject idiosyncrasies.
    subject_mu_freq = rng.uniform(*cfg.mu_band, size=cfg.n_subjects)
    subject_mu_amp = cfg.mu_amplitude * rng.uniform(
        0.8, 1.2, size=cfg.n_subjects)
    subject_noise = cfg.noise_amplitude * rng.uniform(
        0.8, 1.2, size=cfg.n_subjects)

    inputs = np.empty((cfg.n_trials, cfg.n_channels, cfg.n_samples))
    labels = rng.integers(0, 2, size=cfg.n_trials)
    subjects = rng.integers(0, cfg.n_subjects, size=cfg.n_trials)

    for i in range(cfg.n_trials):
        subj = subjects[i]
        noise = subject_noise[subj] * _pink_noise(
            rng, cfg.n_channels, cfg.n_samples, cfg.pink_exponent)

        gain = base_gain.copy()
        # Event-related desynchronization: imagining the RIGHT fist
        # suppresses the mu rhythm over the LEFT motor cortex, and vice
        # versa.
        left_group, right_group = motor_channel_groups(cfg.n_channels)
        erd = cfg.erd_attenuation * rng.uniform(0.85, 1.15)
        target = left_group if labels[i] == 1 else right_group
        for ch in target:
            gain[ch] *= erd

        freq = subject_mu_freq[subj] * rng.uniform(0.97, 1.03)
        phase = rng.uniform(0, 2 * np.pi, size=(cfg.n_channels, 1))
        # Slow random amplitude modulation makes the rhythm non-stationary,
        # as real mu bursts are.
        envelope = 1.0 + 0.3 * np.sin(
            2 * np.pi * rng.uniform(0.1, 0.5) * t + rng.uniform(0, 2 * np.pi))
        mu = subject_mu_amp[subj] * gain[:, None] * envelope * np.sin(
            2 * np.pi * freq * t[None, :] + phase)

        inputs[i] = noise + mu

    return ArrayDataset(inputs, labels.astype(np.int64))
