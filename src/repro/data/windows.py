"""Windowing of continuous recordings into fixed-length model inputs.

The paper's models consume fixed-length trials (six seconds of EEG, three
seconds of ECG), but a deployed monitor sees one *continuous* multichannel
stream.  The standard bridge is sliding-window epoching: cut the stream
into overlapping windows, classify each, and aggregate window decisions
back to an event/recording level.  This module provides both directions:

* :func:`sliding_windows` — strided views over ``(channels, time)`` or
  batched recordings, with hop control (overlap);
* :func:`window_count` — how many windows a recording yields;
* :func:`aggregate_votes` / :func:`aggregate_scores` — recording-level
  decisions from per-window outputs (majority vote, or mean-score argmax —
  the standard test-time augmentation used by EEG pipelines).
"""

from __future__ import annotations

import numpy as np

__all__ = ["window_count", "sliding_windows", "aggregate_votes",
           "aggregate_scores"]


def window_count(n_samples: int, window: int, hop: int) -> int:
    """Number of complete windows in ``n_samples`` (0 when too short)."""
    if window <= 0 or hop <= 0:
        raise ValueError(f"window and hop must be positive, got "
                         f"{window}, {hop}")
    if n_samples < window:
        return 0
    return (n_samples - window) // hop + 1


def sliding_windows(recording: np.ndarray, window: int,
                    hop: int | None = None) -> np.ndarray:
    """Cut a recording into complete fixed-length windows.

    ``recording`` is ``(channels, time)`` → returns ``(n_windows,
    channels, window)``; a trailing partial window is dropped (a deployed
    classifier waits for a full buffer).  ``hop`` defaults to ``window``
    (no overlap).  The result is a copy, safe to mutate.
    """
    recording = np.asarray(recording)
    if recording.ndim != 2:
        raise ValueError(
            f"expected (channels, time), got shape {recording.shape}")
    hop = window if hop is None else hop
    count = window_count(recording.shape[-1], window, hop)
    if count == 0:
        raise ValueError(
            f"recording of {recording.shape[-1]} samples is shorter than "
            f"one {window}-sample window")
    channels = recording.shape[0]
    sc, st = recording.strides
    views = np.lib.stride_tricks.as_strided(
        recording, shape=(count, channels, window),
        strides=(st * hop, sc, st), writeable=False)
    return views.copy()


def aggregate_votes(window_predictions: np.ndarray,
                    num_classes: int | None = None) -> int:
    """Majority vote over per-window class predictions.

    Ties break toward the lower class index (deterministic).  This is the
    robust aggregation when only hard decisions are available (e.g. from
    the in-memory classifier's argmax output).
    """
    preds = np.asarray(window_predictions, dtype=np.int64).ravel()
    if preds.size == 0:
        raise ValueError("no window predictions to aggregate")
    if preds.min() < 0:
        raise ValueError("predictions must be non-negative class indices")
    if num_classes is None:
        num_classes = int(preds.max()) + 1
    counts = np.bincount(preds, minlength=num_classes)
    return int(counts.argmax())


def aggregate_scores(window_scores: np.ndarray) -> tuple[int, np.ndarray]:
    """Mean-score aggregation: average per-window class scores, argmax.

    Returns ``(predicted_class, mean_scores)``.  Preferred over voting
    when real-valued scores are available — near-ties between windows then
    contribute proportionally instead of flipping whole votes.
    """
    scores = np.asarray(window_scores, dtype=float)
    if scores.ndim != 2 or scores.shape[0] == 0:
        raise ValueError(
            f"expected (n_windows, n_classes) scores, got {scores.shape}")
    mean = scores.mean(axis=0)
    return int(mean.argmax()), mean
