"""Dataset containers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Dataset", "ArrayDataset", "Subset"]


class Dataset:
    """Minimal dataset protocol: ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset of ``(inputs, labels)`` numpy arrays."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray):
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise ValueError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) disagree")
        self.inputs = inputs
        self.labels = labels

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index):
        return self.inputs[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1


class Subset(Dataset):
    """A view over selected indices of another dataset."""

    def __init__(self, base: Dataset, indices: Sequence[int]):
        self.base = base
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index):
        return self.base[self.indices[index]]

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize the subset as ``(inputs, labels)`` arrays."""
        if isinstance(self.base, ArrayDataset):
            return (self.base.inputs[self.indices],
                    self.base.labels[self.indices])
        pairs = [self.base[i] for i in self.indices]
        return (np.stack([p[0] for p in pairs]),
                np.asarray([p[1] for p in pairs]))
