"""Digital filtering and spectral features for biomedical time-signals.

The paper's only preprocessing is per-channel standardization (§III-A), but
real EEG/ECG front-ends filter before the network sees anything: powerline
notch, band-pass into the physiological band, and drift removal.  This
module provides that front-end so the examples can run a realistic
acquisition pipeline, and so the EEG generator's mu-rhythm structure can be
verified spectrally in tests.

All filters operate on arrays shaped ``(..., time)`` — the trailing axis is
time, matching the ``(trials, channels, samples)`` layout of
:mod:`repro.data.eeg` / :mod:`repro.data.ecg`.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

__all__ = [
    "bandpass_filter",
    "notch_filter",
    "remove_baseline_wander",
    "band_power",
    "relative_band_power",
    "resample_signal",
    "EEG_BANDS",
]

# Conventional EEG frequency bands (Hz).
EEG_BANDS: dict[str, tuple[float, float]] = {
    "delta": (0.5, 4.0),
    "theta": (4.0, 8.0),
    "mu": (8.0, 12.0),
    "beta": (12.0, 30.0),
    "gamma": (30.0, 70.0),
}


def _validate_rate(sample_rate_hz: float) -> float:
    if sample_rate_hz <= 0:
        raise ValueError(f"sample rate must be positive, got {sample_rate_hz}")
    return float(sample_rate_hz)


def bandpass_filter(data: np.ndarray, low_hz: float, high_hz: float,
                    sample_rate_hz: float, order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth band-pass along the last axis.

    Zero-phase (forward-backward) filtering preserves the temporal alignment
    of ECG fiducial points and EEG event timing, which matters for the
    convolutional feature extractor.
    """
    sample_rate_hz = _validate_rate(sample_rate_hz)
    nyquist = sample_rate_hz / 2
    if not 0 < low_hz < high_hz < nyquist:
        raise ValueError(
            f"need 0 < low ({low_hz}) < high ({high_hz}) < Nyquist "
            f"({nyquist})")
    sos = sp_signal.butter(order, [low_hz, high_hz], btype="bandpass",
                           fs=sample_rate_hz, output="sos")
    return sp_signal.sosfiltfilt(sos, np.asarray(data, dtype=float), axis=-1)


def notch_filter(data: np.ndarray, notch_hz: float, sample_rate_hz: float,
                 quality: float = 30.0) -> np.ndarray:
    """Zero-phase IIR notch (e.g. 50/60 Hz powerline) along the last axis."""
    sample_rate_hz = _validate_rate(sample_rate_hz)
    if not 0 < notch_hz < sample_rate_hz / 2:
        raise ValueError(
            f"notch frequency {notch_hz} outside (0, Nyquist)")
    b, a = sp_signal.iirnotch(notch_hz, quality, fs=sample_rate_hz)
    return sp_signal.filtfilt(b, a, np.asarray(data, dtype=float), axis=-1)


def remove_baseline_wander(data: np.ndarray, sample_rate_hz: float,
                           cutoff_hz: float = 0.5) -> np.ndarray:
    """Suppress slow drift (respiration / electrode movement) below
    ``cutoff_hz`` with a zero-phase high-pass — the standard ECG baseline-
    wander correction."""
    sample_rate_hz = _validate_rate(sample_rate_hz)
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ValueError(f"cutoff {cutoff_hz} outside (0, Nyquist)")
    sos = sp_signal.butter(2, cutoff_hz, btype="highpass",
                           fs=sample_rate_hz, output="sos")
    return sp_signal.sosfiltfilt(sos, np.asarray(data, dtype=float), axis=-1)


def band_power(data: np.ndarray, low_hz: float, high_hz: float,
               sample_rate_hz: float) -> np.ndarray:
    """Integrated power in ``[low_hz, high_hz]`` per signal.

    Integrates the Welch power spectral density over the band along the last
    axis; returns an array with the time axis reduced away.  Integrated (not
    mean) PSD makes powers additive over disjoint bands, so
    :func:`relative_band_power` is a proper fraction.  This is the feature
    the EEG task's discriminative structure lives in (mu-band
    desynchronization).
    """
    sample_rate_hz = _validate_rate(sample_rate_hz)
    data = np.asarray(data, dtype=float)
    if not 0 <= low_hz < high_hz <= sample_rate_hz / 2:
        raise ValueError(
            f"band [{low_hz}, {high_hz}] outside [0, Nyquist]")
    nperseg = min(data.shape[-1], int(2 * sample_rate_hz))
    freqs, psd = sp_signal.welch(data, fs=sample_rate_hz, nperseg=nperseg,
                                 axis=-1)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if mask.sum() < 2:
        raise ValueError("band too narrow for the spectral resolution")
    return np.trapezoid(psd[..., mask], freqs[mask], axis=-1)


def relative_band_power(data: np.ndarray, low_hz: float, high_hz: float,
                        sample_rate_hz: float,
                        total_band: tuple[float, float] | None = None
                        ) -> np.ndarray:
    """Band power normalized by total power — amplitude-scale invariant."""
    if total_band is None:
        total_band = (0.5, sample_rate_hz / 2 * 0.99)
    numer = band_power(data, low_hz, high_hz, sample_rate_hz)
    denom = band_power(data, total_band[0], total_band[1], sample_rate_hz)
    return numer / np.maximum(denom, np.finfo(float).tiny)


def resample_signal(data: np.ndarray, rate_in_hz: float, rate_out_hz: float
                    ) -> np.ndarray:
    """Polyphase resampling along the last axis (e.g. 250 Hz -> 160 Hz).

    Lets a model trained at one acquisition rate ingest recordings from
    hardware running at another.
    """
    rate_in_hz = _validate_rate(rate_in_hz)
    rate_out_hz = _validate_rate(rate_out_hz)
    if rate_in_hz == rate_out_hz:
        return np.asarray(data, dtype=float).copy()
    from math import gcd
    # Rational approximation good to ~1e-6 relative error.
    scaled_in = int(round(rate_in_hz * 1000))
    scaled_out = int(round(rate_out_hz * 1000))
    common = gcd(scaled_in, scaled_out)
    up, down = scaled_out // common, scaled_in // common
    return sp_signal.resample_poly(np.asarray(data, dtype=float), up, down,
                                   axis=-1)
