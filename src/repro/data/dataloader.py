"""Mini-batch iteration."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import ArrayDataset, Dataset, Subset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate a dataset in mini-batches of ``(inputs, labels)`` arrays.

    Shuffling uses an injected generator so experiments are reproducible.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32,
                 shuffle: bool = False, drop_last: bool = False,
                 rng: np.random.Generator | None = None):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _materialized(self) -> tuple[np.ndarray, np.ndarray]:
        if isinstance(self.dataset, ArrayDataset):
            return self.dataset.inputs, self.dataset.labels
        if isinstance(self.dataset, Subset):
            return self.dataset.arrays()
        pairs = [self.dataset[i] for i in range(len(self.dataset))]
        return (np.stack([p[0] for p in pairs]),
                np.asarray([p[1] for p in pairs]))

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        inputs, labels = self._materialized()
        order = np.arange(len(inputs))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield inputs[idx], labels[idx]
