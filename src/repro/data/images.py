"""Synthetic image-classification dataset ("SynthNet").

The paper's §IV evaluates partial binarization of MobileNet V1 on
ImageNet-1K, which cannot ship offline and is far beyond a numpy training
budget.  SynthNet is a scale-reduced stand-in exercising the identical code
path: a many-class image classification problem where each class is a
spatially structured prototype (mixture of oriented Gabor-like blobs) seen
under translation, contrast, and noise nuisances.  Depthwise-separable
feature extractors must learn localized oriented filters to solve it, which
is the workload profile MobileNet was designed for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset

__all__ = ["ImageConfig", "make_image_dataset"]


@dataclass
class ImageConfig:
    """Generation parameters.

    Paper scale (for reference, not runnable offline): 1000 classes,
    1.2 M images of 224x224x3.  Defaults give a small but non-trivial
    many-class problem.
    """

    n_classes: int = 10
    n_per_class: int = 40
    image_size: int = 32
    n_channels: int = 3
    blobs_per_class: int = 4
    noise_amplitude: float = 0.25
    max_shift: int = 3
    seed: int = 0


def _gabor_blob(size: int, cx: float, cy: float, sigma: float, freq: float,
                theta: float) -> np.ndarray:
    """An oriented Gabor patch centred at (cx, cy)."""
    ys, xs = np.mgrid[0:size, 0:size].astype(float)
    dx, dy = xs - cx, ys - cy
    envelope = np.exp(-(dx ** 2 + dy ** 2) / (2 * sigma ** 2))
    carrier = np.cos(2 * np.pi * freq * (dx * np.cos(theta)
                                         + dy * np.sin(theta)))
    return envelope * carrier


def make_image_dataset(cfg: ImageConfig | None = None) -> ArrayDataset:
    """Generate ``(N, C, H, W)`` images with integer class labels."""
    cfg = cfg or ImageConfig()
    rng = np.random.default_rng(cfg.seed)
    size = cfg.image_size

    prototypes = np.zeros((cfg.n_classes, cfg.n_channels, size, size))
    for cls in range(cfg.n_classes):
        for _ in range(cfg.blobs_per_class):
            channel = rng.integers(cfg.n_channels)
            blob = _gabor_blob(
                size,
                cx=rng.uniform(size * 0.25, size * 0.75),
                cy=rng.uniform(size * 0.25, size * 0.75),
                sigma=rng.uniform(size * 0.08, size * 0.2),
                freq=rng.uniform(0.05, 0.25),
                theta=rng.uniform(0, np.pi),
            )
            prototypes[cls, channel] += blob
        # Normalize prototype contrast so classes have comparable energy.
        scale = np.abs(prototypes[cls]).max()
        if scale > 0:
            prototypes[cls] /= scale

    n_total = cfg.n_classes * cfg.n_per_class
    inputs = np.empty((n_total, cfg.n_channels, size, size))
    labels = np.repeat(np.arange(cfg.n_classes), cfg.n_per_class)
    for i, cls in enumerate(labels):
        image = prototypes[cls] * rng.uniform(0.7, 1.3)        # contrast
        shift_y = rng.integers(-cfg.max_shift, cfg.max_shift + 1)
        shift_x = rng.integers(-cfg.max_shift, cfg.max_shift + 1)
        image = np.roll(image, (shift_y, shift_x), axis=(1, 2))
        image = image + cfg.noise_amplitude * rng.standard_normal(image.shape)
        inputs[i] = image

    order = rng.permutation(n_total)
    return ArrayDataset(inputs[order], labels[order].astype(np.int64))
