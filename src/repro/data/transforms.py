"""Data preprocessing and augmentation.

The paper's only EEG preprocessing is "per-channel normalization by
subtracting the mean and dividing by variance" (§III-A), and its only
augmentation is "small amplitude noise added to each training sample".
"""

from __future__ import annotations

import numpy as np

__all__ = ["ChannelStandardizer", "GaussianNoiseAugment"]


class ChannelStandardizer:
    """Per-channel standardization fitted on training data.

    Works on ``(N, C, ...)`` arrays; statistics are computed over the batch
    and all trailing axes, per channel.
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "ChannelStandardizer":
        data = np.asarray(data)
        axes = (0,) + tuple(range(2, data.ndim))
        self.mean = data.mean(axis=axes)
        self.std = data.std(axis=axes) + self.eps
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("standardizer must be fitted before transform")
        data = np.asarray(data)
        shape = [1] * data.ndim
        shape[1] = len(self.mean)
        return (data - self.mean.reshape(shape)) / self.std.reshape(shape)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)


class GaussianNoiseAugment:
    """Additive Gaussian noise data augmentation for training batches."""

    def __init__(self, sigma: float = 0.05,
                 rng: np.random.Generator | None = None):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = sigma
        self.rng = rng or np.random.default_rng()

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if self.sigma == 0:
            return batch
        batch = np.asarray(batch)
        noise = self.rng.normal(0.0, self.sigma, size=batch.shape)
        if np.issubdtype(batch.dtype, np.floating):
            # Sample in float64 (one draw per element, reproducible per
            # seed regardless of input precision) but return the batch's
            # own dtype: augmentation must never upcast float32 training
            # data to float64.
            noise = noise.astype(batch.dtype, copy=False)
        return batch + noise
