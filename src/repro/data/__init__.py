"""Datasets, loaders, cross-validation and the synthetic signal generators.

The paper's corpora (PhysioNet EEG Motor Movement/Imagery, Challenge-Data
ECG electrode inversion, ImageNet-1K) cannot ship with an offline
reproduction; each is replaced by a generator producing the same
discriminative structure — see the module docstrings of :mod:`repro.data.eeg`,
:mod:`repro.data.ecg` and :mod:`repro.data.images`, and the substitution
table in ``DESIGN.md``.
"""

from repro.data.dataset import Dataset, ArrayDataset, Subset
from repro.data.dataloader import DataLoader
from repro.data.crossval import kfold_indices, stratified_kfold_indices
from repro.data.transforms import ChannelStandardizer, GaussianNoiseAugment
from repro.data.eeg import EEGConfig, make_eeg_dataset
from repro.data.ecg import ECGConfig, make_ecg_dataset, derive_leads
from repro.data.images import ImageConfig, make_image_dataset
from repro.data.filters import (EEG_BANDS, band_power, bandpass_filter,
                                notch_filter, relative_band_power,
                                remove_baseline_wander, resample_signal)
from repro.data.windows import (window_count, sliding_windows,
                                aggregate_votes, aggregate_scores)
from repro.data.seizure import (SeizureConfig, make_seizure_dataset,
                                spike_wave_train)

__all__ = [
    "Dataset", "ArrayDataset", "Subset",
    "DataLoader",
    "kfold_indices", "stratified_kfold_indices",
    "ChannelStandardizer", "GaussianNoiseAugment",
    "EEGConfig", "make_eeg_dataset",
    "ECGConfig", "make_ecg_dataset", "derive_leads",
    "ImageConfig", "make_image_dataset",
    "EEG_BANDS", "bandpass_filter", "notch_filter",
    "remove_baseline_wander", "band_power", "relative_band_power",
    "resample_signal",
    "window_count", "sliding_windows", "aggregate_votes",
    "aggregate_scores",
    "SeizureConfig", "make_seizure_dataset", "spike_wave_train",
]
