"""K-fold cross-validation.

The paper evaluates both medical tasks with five-fold cross-validation
("the dataset is partitioned into five non-overlapping validation subsets
not seen during the training", §III-A), repeated five times with fresh
models.  :func:`kfold_indices` produces the partition; stratified splitting
keeps class balance inside each fold.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kfold_indices", "stratified_kfold_indices"]


def kfold_indices(n: int, k: int, rng: np.random.Generator | None = None
                  ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split ``range(n)`` into ``k`` (train, validation) index pairs.

    Folds are non-overlapping and jointly cover all indices; fold sizes
    differ by at most one.
    """
    if not 2 <= k <= n:
        raise ValueError(f"need 2 <= k <= n, got k={k}, n={n}")
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    folds = np.array_split(order, k)
    splits = []
    for i in range(k):
        val = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        splits.append((train, val))
    return splits


def stratified_kfold_indices(labels: np.ndarray, k: int,
                             rng: np.random.Generator | None = None
                             ) -> list[tuple[np.ndarray, np.ndarray]]:
    """K-fold with per-class proportional allocation to every fold."""
    labels = np.asarray(labels)
    n = len(labels)
    if not 2 <= k <= n:
        raise ValueError(f"need 2 <= k <= n, got k={k}, n={n}")
    fold_members: list[list[np.ndarray]] = [[] for _ in range(k)]
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        if rng is not None:
            rng.shuffle(members)
        for i, chunk in enumerate(np.array_split(members, k)):
            fold_members[i].append(chunk)
    folds = [np.concatenate(parts) for parts in fold_members]
    splits = []
    for i in range(k):
        val = np.sort(folds[i])
        train = np.sort(np.concatenate([folds[j] for j in range(k) if j != i]))
        splits.append((train, val))
    return splits
