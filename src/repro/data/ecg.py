"""Synthetic 12-lead ECG dataset with electrode-inversion labels.

The paper's ECG task (§III-B) comes from a Challenge-Data competition:
detect whether any pair of electrodes was swapped when recording a 3-second,
250 Hz, 12-lead ECG.  The dataset is no longer distributable, so we simulate
it *from the electrode level up*, which makes the inversion physically
faithful:

1. The cardiac electrical activity is a rotating dipole: each wave of the
   PQRST complex is a Gaussian time course along a characteristic 3-D axis.
2. Ten electrode potentials (RA, LA, LL, V1..V6, with RL as reference) are
   dot products of the dipole with electrode-specific lead vectors.
3. The standard 12 leads are *derived* from electrode potentials:
   I = LA-RA, II = LL-RA, III = LL-LA, the augmented limb leads, and the
   precordial leads referenced to the Wilson central terminal.
4. A positive sample swaps two electrode potentials *before* derivation, so
   the label corresponds exactly to a physical cabling mistake and perturbs
   several derived leads in the correlated way real inversions do.

Heart rate, wave amplitudes/widths, dipole orientation and noise vary per
trial, so the detector must learn the inter-lead structure rather than a
fixed template.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import ArrayDataset

__all__ = ["ECGConfig", "make_ecg_dataset", "ELECTRODE_NAMES", "LEAD_NAMES",
           "derive_leads"]

ELECTRODE_NAMES = ("RA", "LA", "LL", "V1", "V2", "V3", "V4", "V5", "V6")
LEAD_NAMES = ("I", "II", "III", "aVR", "aVL", "aVF",
              "V1", "V2", "V3", "V4", "V5", "V6")

# Unit-ish lead vectors (frontal-plane limb electrodes + precordial arc).
# Axes: x = left, y = down (toward feet), z = anterior.
_ELECTRODE_VECTORS = np.array([
    [-0.8, -0.5, 0.0],   # RA
    [0.8, -0.5, 0.0],    # LA
    [0.2, 1.0, 0.0],     # LL
    [-0.5, 0.1, 0.85],   # V1  (right parasternal: mostly negative QRS)
    [-0.15, 0.1, 1.0],   # V2
    [0.3, 0.15, 0.95],   # V3
    [0.6, 0.2, 0.8],     # V4
    [0.85, 0.2, 0.5],    # V5
    [1.0, 0.2, 0.15],    # V6  (left lateral: positive QRS)
])

# PQRST waves: (label, mean time within beat [fraction], width [s],
# amplitude [mV], direction).
_WAVES = (
    ("P", 0.15, 0.025, 0.12, np.array([0.4, 0.8, 0.1])),
    ("Q", 0.340, 0.010, -0.12, np.array([0.6, 0.6, 0.2])),
    ("R", 0.365, 0.013, 1.10, np.array([0.55, 0.75, 0.25])),
    ("S", 0.395, 0.011, -0.28, np.array([-0.2, 0.7, 0.5])),
    ("T", 0.62, 0.060, 0.30, np.array([0.45, 0.7, 0.3])),
)


@dataclass
class ECGConfig:
    """Generation parameters.

    Paper scale: 1000 trials of 750 samples (3 s at 250 Hz).  The default
    trial count is reduced for offline training speed; ``n_samples=750``
    matches the paper so Table II's layer shapes are exact.
    """

    n_trials: int = 400
    n_samples: int = 750
    sample_rate: float = 250.0
    heart_rate_range: tuple[float, float] = (55.0, 100.0)
    noise_amplitude: float = 0.05
    baseline_wander: float = 0.05
    inversion_fraction: float = 0.5
    swappable: tuple[tuple[int, int], ...] = field(default_factory=lambda: (
        (0, 1),   # RA <-> LA, the classic limb inversion
        (0, 2),   # RA <-> LL
        (1, 2),   # LA <-> LL
        (3, 4),   # V1 <-> V2
        (4, 5),   # V2 <-> V3
        (7, 8),   # V5 <-> V6
    ))
    seed: int = 0


def derive_leads(potentials: np.ndarray) -> np.ndarray:
    """Derive the 12 standard leads from 9 electrode potentials.

    ``potentials``: ``(9, T)`` array ordered as :data:`ELECTRODE_NAMES`.
    Returns ``(12, T)`` ordered as :data:`LEAD_NAMES`.
    """
    ra, la, ll = potentials[0], potentials[1], potentials[2]
    chest = potentials[3:]
    wilson = (ra + la + ll) / 3.0
    lead_i = la - ra
    lead_ii = ll - ra
    lead_iii = ll - la
    avr = ra - (la + ll) / 2.0
    avl = la - (ra + ll) / 2.0
    avf = ll - (ra + la) / 2.0
    precordial = chest - wilson[None, :]
    return np.vstack([lead_i, lead_ii, lead_iii, avr, avl, avf, precordial])


def _dipole_trajectory(rng: np.random.Generator, cfg: ECGConfig
                       ) -> np.ndarray:
    """Sample a ``(3, T)`` cardiac dipole over ``n_samples``."""
    t = np.arange(cfg.n_samples) / cfg.sample_rate
    rate = rng.uniform(*cfg.heart_rate_range)
    period = 60.0 / rate
    # Small random rotation of the electrical axis for this subject.
    angle = rng.normal(0.0, 0.15)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    rotation = np.array([[cos_a, -sin_a, 0.0],
                         [sin_a, cos_a, 0.0],
                         [0.0, 0.0, 1.0]])
    dipole = np.zeros((3, cfg.n_samples))
    beat_start = -rng.uniform(0, period)      # random phase offset
    while beat_start < t[-1]:
        for _, frac, width, amp, direction in _WAVES:
            center = beat_start + frac * period
            amp_jitter = amp * rng.uniform(0.9, 1.1)
            width_jitter = width * rng.uniform(0.9, 1.1)
            profile = amp_jitter * np.exp(
                -0.5 * ((t - center) / width_jitter) ** 2)
            axis = rotation @ (direction / np.linalg.norm(direction))
            dipole += axis[:, None] * profile[None, :]
        beat_start += period * rng.uniform(0.98, 1.02)  # slight RR variation
    return dipole


def make_ecg_dataset(cfg: ECGConfig | None = None) -> ArrayDataset:
    """Generate the dataset.

    Returns trials of shape ``(n_trials, 12, n_samples)`` with label 1 for
    trials recorded with a swapped electrode pair and 0 for correct cabling.
    """
    cfg = cfg or ECGConfig()
    rng = np.random.default_rng(cfg.seed)
    inputs = np.empty((cfg.n_trials, len(LEAD_NAMES), cfg.n_samples))
    labels = (rng.random(cfg.n_trials) < cfg.inversion_fraction).astype(np.int64)
    t = np.arange(cfg.n_samples) / cfg.sample_rate

    for i in range(cfg.n_trials):
        dipole = _dipole_trajectory(rng, cfg)
        potentials = _ELECTRODE_VECTORS @ dipole       # (9, T)
        # Per-electrode noise (muscle artefact + mains hum residue).
        potentials = potentials + cfg.noise_amplitude * rng.standard_normal(
            potentials.shape)
        # Common-mode baseline wander (respiration), mostly cancelled by
        # lead derivation but electrode-specific gain errors keep a residue.
        wander = cfg.baseline_wander * np.sin(
            2 * np.pi * rng.uniform(0.15, 0.4) * t + rng.uniform(0, 2 * np.pi))
        potentials = potentials * rng.uniform(
            0.97, 1.03, size=(len(ELECTRODE_NAMES), 1)) + wander[None, :]

        if labels[i]:
            a, b = cfg.swappable[rng.integers(len(cfg.swappable))]
            potentials[[a, b]] = potentials[[b, a]]

        inputs[i] = derive_leads(potentials)

    return ArrayDataset(inputs, labels)
