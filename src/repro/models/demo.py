"""Deterministic demo classifiers for the CLI, fixtures and smoke tests.

Two families, both reproducible bit-for-bit from fixed PCG64 seeds:

* :func:`demo_model_and_inputs` — the CLI's reduced paper models
  (calibrated batch-norm statistics via forward passes); deterministic
  per (name, mode) so worker processes can rebuild the identical model;
* :func:`golden_classifier` — tiny fully binarized EEG/ECG classifiers
  whose batch-norm statistics are *drawn from the seeded generator*
  instead of calibrated.  No matmul touches the parameters, so the
  committed golden artifacts under ``tests/fixtures/plans/`` are
  reproducible across BLAS builds — the drift the golden tests measure
  is format/kernel drift, never floating-point library drift.
"""

from __future__ import annotations

import numpy as np

from repro.models.common import BinarizationMode
from repro.models.ecg_net import ECGNet
from repro.models.eeg_net import EEGNet
from repro.models.mobilenet import MobileNetConfig, MobileNetV1
from repro.nn.norm import _BatchNorm

__all__ = ["demo_model_and_inputs", "golden_classifier", "GOLDEN_NAMES"]

GOLDEN_NAMES = ("eeg", "ecg")


def demo_model_and_inputs(model_name: str, mode_name: str):
    """Reduced paper model + calibration inputs, deterministic per name.

    Seeded so backend-evaluation workers (and the ``deploy`` command's
    synthetic inputs) can rebuild the identical model in any process.
    Raises :class:`ValueError` for unsupported combinations (MobileNet
    cannot lower its padded convolutions).
    """
    from repro.tensor import Tensor, no_grad

    mode = BinarizationMode(mode_name)
    rng = np.random.default_rng(0)
    if model_name == "eeg":
        model = EEGNet(mode=mode, n_channels=16, n_samples=240,
                       base_filters=8, hidden_units=32, rng=rng)
        inputs = rng.standard_normal((32, 16, 240))
    elif model_name == "ecg":
        model = ECGNet(mode=mode, n_samples=300, base_filters=8,
                       conv_keep_prob=1.0, classifier_keep_prob=1.0, rng=rng)
        inputs = rng.standard_normal((32, 12, 300))
        model.fit_input_norm(inputs)
    elif model_name == "mobilenet":
        if mode is BinarizationMode.FULL_BINARY:
            raise ValueError("mobilenet feature lowering is not supported "
                             "(padded convolutions); use binary_classifier")
        config = MobileNetConfig.reduced(n_classes=4, image_size=16,
                                         width_multiplier=0.25, n_blocks=3)
        model = MobileNetV1(config, mode=mode, rng=rng)
        inputs = rng.standard_normal((32, 3, 16, 16))
    else:
        raise ValueError(f"unknown demo model {model_name!r}; "
                         "choose eeg, ecg or mobilenet")

    # Calibrate batch-norm running statistics (untrained weights are fine
    # for a runtime demonstration; folding needs realistic stats).
    model.train()
    with no_grad():
        for start in range(0, len(inputs), 8):
            model(Tensor(inputs[start:start + 8]))
    model.eval()
    return model, inputs


def _draw_batchnorm_stats(model, rng: np.random.Generator) -> None:
    """Replace every batch-norm's parameters and running statistics with
    seeded draws (non-degenerate: positive variance, gamma away from 0)."""
    for module in model.modules():
        if isinstance(module, _BatchNorm):
            n = module.num_features
            module.gamma.data[...] = rng.normal(1.0, 0.25, n)
            module.beta.data[...] = rng.normal(0.0, 0.25, n)
            module.set_buffer("running_mean", rng.normal(0.0, 0.5, n))
            module.set_buffer("running_var",
                              np.abs(rng.normal(1.0, 0.25, n)) + 0.1)


def golden_classifier(name: str):
    """A tiny FULL_BINARY demo classifier + inputs, stable across builds.

    ``name`` is ``"eeg"`` (lowered temporal/spatial conv pipeline) or
    ``"ecg"`` (lowered five-stage 1-D conv stack).  Every parameter,
    statistic and input sample is a direct PCG64 draw, so the same bytes
    come out on every platform — the fixture contract the golden
    artifact tests rely on.
    """
    if name == "eeg":
        rng = np.random.default_rng(20250729)
        model = EEGNet(mode=BinarizationMode.FULL_BINARY, n_channels=8,
                       n_samples=64, base_filters=4, hidden_units=16,
                       rng=rng)
        inputs = rng.standard_normal((16, 8, 64))
    elif name == "ecg":
        rng = np.random.default_rng(20260729)
        model = ECGNet(mode=BinarizationMode.FULL_BINARY, n_samples=200,
                       base_filters=4, hidden_units=16, conv_keep_prob=1.0,
                       classifier_keep_prob=1.0, rng=rng)
        model.input_norm.set_buffer("mean", rng.normal(0.0, 0.3, 12))
        model.input_norm.set_buffer(
            "std", np.abs(rng.normal(1.0, 0.2, 12)) + 0.5)
        inputs = rng.standard_normal((16, 12, 200))
    else:
        raise ValueError(f"unknown golden classifier {name!r}; "
                         f"choose one of {GOLDEN_NAMES}")
    _draw_batchnorm_stats(model, rng)
    model.eval()
    return model, inputs
