"""End-to-end EEG motor-imagery classifier (paper Table I, Fig. 6).

The architecture follows Dose et al. (refs. [26], [27] of the paper):

====================  ==================  =========  ===============
Layer                 Kernels             Padding    Output shape
====================  ==================  =========  ===============
Conv (time)           40 of 30x1          15         961 x 64 x 40
Conv (space)          40 of 1x64x40       no         961 x 1 x 40
Avg. pool             30x1, stride 15     no         63 x 1 x 40
Flatten               —                   —          2520
FC                    80                  —          80
Softmax               —                   —          2
====================  ==================  =========  ===============

The first convolution runs 1-D temporal filters independently over every
electrode (Fig. 1 of the paper); the second correlates all 64 electrodes at
each time step; the overlapping average pool downsamples in time.

ReLU activations are used in the real-weight configuration and replaced by
``sign`` when binarized (§III-A).  Batch normalization is inserted after
every weighted layer: it is mandatory for BNN training (it provides the
learned threshold ``b`` of Eq. 3) and we keep it in the real variant so the
three configurations differ only in weight/activation precision.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.common import BinarizationMode, Compilable, LayerSummary
from repro.tensor import Tensor

__all__ = ["EEGNet", "EEG_INPUT_CHANNELS", "EEG_INPUT_SAMPLES"]

EEG_INPUT_CHANNELS = 64
EEG_INPUT_SAMPLES = 960


class EEGNet(nn.Module, Compilable):
    """EEG classification network with selectable binarization mode.

    Parameters
    ----------
    mode:
        Which parts are binarized (see :class:`BinarizationMode`).
    filter_multiplier:
        The paper's "filter augmentation": multiplies the number of
        convolution kernels (Table III reports 1x and 11x for the BNN).
    n_channels, n_samples:
        Input geometry; defaults match the paper (64 electrodes, 6 s at
        160 Hz).  The synthetic dataset may use shorter windows.
    """

    def __init__(self, mode: BinarizationMode = BinarizationMode.REAL,
                 filter_multiplier: int = 1, n_classes: int = 2,
                 n_channels: int = EEG_INPUT_CHANNELS,
                 n_samples: int = EEG_INPUT_SAMPLES,
                 hidden_units: int = 80,
                 temporal_kernel: int = 30,
                 pool_kernel: int = 30, pool_stride: int = 15,
                 base_filters: int = 40,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.mode = mode
        self.filter_multiplier = filter_multiplier
        self.n_channels = n_channels
        self.n_samples = n_samples
        self.n_classes = n_classes
        # ``base_filters`` defaults to the paper's 40; benches shrink it to
        # keep cross-validated sweeps tractable in numpy.
        filters = base_filters * filter_multiplier
        self.filters = filters
        self.temporal_kernel = temporal_kernel
        self.temporal_padding = temporal_kernel // 2
        self.pool = nn.AvgPool1d(pool_kernel, pool_stride)

        conv2d = nn.BinaryConv2d if mode.binarize_features else nn.Conv2d
        act = (lambda: nn.Sign()) if mode.binarize_features \
            else (lambda: nn.ReLU())

        # Temporal convolution: input is (N, 1, T, E); 30x1 kernels slide in
        # time only, independently per electrode.
        self.conv_time = conv2d(1, filters, (temporal_kernel, 1),
                                padding=(self.temporal_padding, 0), rng=rng)
        self.bn_time = nn.BatchNorm2d(filters)
        self.act_time = act()
        # Spatial convolution: 1xE kernels mix all electrodes per time step.
        self.conv_space = conv2d(filters, filters, (1, n_channels), rng=rng)
        self.bn_space = nn.BatchNorm2d(filters)
        self.act_space = act()

        t_after_conv = n_samples + 2 * self.temporal_padding \
            - temporal_kernel + 1
        self.t_pooled = (t_after_conv - pool_kernel) // pool_stride + 1
        self.flat_features = self.t_pooled * filters

        if mode.binarize_classifier:
            # Classifier inputs must themselves be binary for the XNOR
            # hardware pipeline, so a sign precedes the first binary FC.
            self.pre_classifier = nn.Sequential(
                nn.BatchNorm1d(self.flat_features), nn.Sign())
            self.fc1 = nn.BinaryLinear(self.flat_features, hidden_units,
                                       rng=rng)
            self.bn_fc1 = nn.BatchNorm1d(hidden_units)
            self.act_fc1 = nn.Sign()
            self.fc2 = nn.BinaryLinear(hidden_units, n_classes, rng=rng)
            self.bn_fc2 = nn.BatchNorm1d(n_classes)
        else:
            self.pre_classifier = nn.Identity()
            self.fc1 = nn.Linear(self.flat_features, hidden_units, rng=rng)
            self.bn_fc1 = nn.BatchNorm1d(hidden_units)
            self.act_fc1 = nn.ReLU()
            self.fc2 = nn.Linear(hidden_units, n_classes, rng=rng)
            self.bn_fc2 = nn.Identity()

    # ------------------------------------------------------------------
    def _as_image(self, x: Tensor) -> Tensor:
        """Reshape dataset trials ``(N, E, T)`` to conv input ``(N,1,T,E)``."""
        if x.ndim != 3:
            raise ValueError(f"expected (N, electrodes, time), got {x.shape}")
        return x.transpose((0, 2, 1)).reshape(x.shape[0], 1, self.n_samples,
                                              self.n_channels)

    def features(self, x: Tensor) -> Tensor:
        """Feature extractor up to (and including) flatten."""
        h = self._as_image(x)
        h = self.act_time(self.bn_time(self.conv_time(h)))
        h = self.act_space(self.bn_space(self.conv_space(h)))
        # (N, F, T', 1) -> (N, F, T') -> pool -> flatten
        h = h.reshape(h.shape[0], self.filters, h.shape[2])
        h = self.pool(h)
        return h.flatten_from(1)

    def classifier(self, feats: Tensor) -> Tensor:
        h = self.pre_classifier(feats)
        h = self.act_fc1(self.bn_fc1(self.fc1(h)))
        return self.bn_fc2(self.fc2(h))

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))

    # ------------------------------------------------------------------
    def feature_parameters(self) -> int:
        """Parameter count of the convolutional feature extractor."""
        convs = [self.conv_time, self.conv_space]
        return sum(m.weight.size + (m.bias.size if getattr(m, "bias", None)
                                    is not None else 0) for m in convs)

    def classifier_parameters(self) -> int:
        """Parameter count of the dense classifier (weights only, as the
        paper counts)."""
        total = self.fc1.weight.size + self.fc2.weight.size
        for layer in (self.fc1, self.fc2):
            bias = getattr(layer, "bias", None)
            if bias is not None:
                total += bias.size
        return total

    def layer_summaries(self) -> list[LayerSummary]:
        """Rows of Table I for the current geometry."""
        t_conv = self.n_samples + 2 * self.temporal_padding \
            - self.temporal_kernel + 1
        f = self.filters
        conv1_params = self.conv_time.weight.size + (
            self.conv_time.bias.size if getattr(self.conv_time, "bias", None)
            is not None else 0)
        conv2_params = self.conv_space.weight.size + (
            self.conv_space.bias.size if getattr(self.conv_space, "bias", None)
            is not None else 0)
        return [
            LayerSummary("Conv", f"{f} of {self.temporal_kernel}x1",
                         str(self.temporal_padding),
                         (t_conv, self.n_channels, f), conv1_params),
            LayerSummary("Conv", f"{f} of 1x{self.n_channels}x{f}", "No",
                         (t_conv, 1, f), conv2_params),
            LayerSummary("Avg. pool",
                         f"{self.pool.kernel_size}x1 (stride {self.pool.stride})",
                         "No", (self.t_pooled, 1, f), 0),
            LayerSummary("Flatten", "-", "-", (self.flat_features,), 0),
            LayerSummary("FC", str(self.bn_fc1.num_features), "-",
                         (self.bn_fc1.num_features,),
                         self.fc1.weight.size
                         + (self.fc1.bias.size
                            if getattr(self.fc1, "bias", None) is not None
                            else 0)),
            LayerSummary("Softmax", "-", "-", (self.n_classes,),
                         self.fc2.weight.size
                         + (self.fc2.bias.size
                            if getattr(self.fc2, "bias", None) is not None
                            else 0)),
        ]
