"""The paper's three network architectures.

* :class:`~repro.models.eeg_net.EEGNet` — Table I / Fig. 6, EEG motor
  imagery.
* :class:`~repro.models.ecg_net.ECGNet` — Table II, ECG electrode-inversion
  detection.
* :class:`~repro.models.mobilenet.MobileNetV1` — §IV, partial binarization
  on vision tasks.

Each accepts a :class:`~repro.models.common.BinarizationMode` selecting the
real-weight baseline, the fully binarized network, or the paper's proposed
binarized-classifier configuration, plus a ``filter_multiplier`` for the
augmentation sweeps of Table III / Fig. 7.
"""

from repro.models.common import BinarizationMode, Compilable, LayerSummary
from repro.models.demo import (demo_model_and_inputs, golden_classifier,
                               GOLDEN_NAMES)
from repro.models.eeg_net import EEGNet, EEG_INPUT_CHANNELS, EEG_INPUT_SAMPLES
from repro.models.ecg_net import ECGNet, ECG_INPUT_LEADS, ECG_INPUT_SAMPLES
from repro.models.mobilenet import MobileNetV1, MobileNetConfig

__all__ = [
    "BinarizationMode", "Compilable", "LayerSummary",
    "EEGNet", "EEG_INPUT_CHANNELS", "EEG_INPUT_SAMPLES",
    "ECGNet", "ECG_INPUT_LEADS", "ECG_INPUT_SAMPLES",
    "MobileNetV1", "MobileNetConfig",
    "demo_model_and_inputs", "golden_classifier", "GOLDEN_NAMES",
]
