"""Shared model machinery: binarization modes and layer summaries.

The paper compares three configurations of each network (§III-C):

* ``REAL`` — 32-bit floating-point weights and activations;
* ``FULL_BINARY`` — every convolution and dense layer binarized, sign
  activations throughout ("all-binarized");
* ``BINARY_CLASSIFIER`` — convolutional feature extractor kept real,
  only the fully connected classifier binarized (the paper's proposed
  memory/accuracy compromise).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["BinarizationMode", "LayerSummary"]


class BinarizationMode(enum.Enum):
    """Which parts of a network use ±1 weights."""

    REAL = "real"
    FULL_BINARY = "full_binary"
    BINARY_CLASSIFIER = "binary_classifier"

    @property
    def binarize_features(self) -> bool:
        return self is BinarizationMode.FULL_BINARY

    @property
    def binarize_classifier(self) -> bool:
        return self is not BinarizationMode.REAL


@dataclass
class LayerSummary:
    """One row of an architecture table (Tables I and II of the paper)."""

    name: str
    kernels: str
    padding: str
    output_shape: tuple[int, ...]
    params: int

    def row(self) -> tuple[str, str, str, str, str]:
        shape = "x".join(str(s) for s in self.output_shape)
        return (self.name, self.kernels, self.padding, shape, str(self.params))
