"""Shared model machinery: binarization modes and layer summaries.

The paper compares three configurations of each network (§III-C):

* ``REAL`` — 32-bit floating-point weights and activations;
* ``FULL_BINARY`` — every convolution and dense layer binarized, sign
  activations throughout ("all-binarized");
* ``BINARY_CLASSIFIER`` — convolutional feature extractor kept real,
  only the fully connected classifier binarized (the paper's proposed
  memory/accuracy compromise).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["BinarizationMode", "LayerSummary", "Compilable"]


class BinarizationMode(enum.Enum):
    """Which parts of a network use ±1 weights."""

    REAL = "real"
    FULL_BINARY = "full_binary"
    BINARY_CLASSIFIER = "binary_classifier"

    @property
    def binarize_features(self) -> bool:
        return self is BinarizationMode.FULL_BINARY

    @property
    def binarize_classifier(self) -> bool:
        return self is not BinarizationMode.REAL


class Compilable:
    """Mixin giving every paper model a one-call route into the unified
    inference runtime.

    ``model.compile(backend="packed")`` folds batch-norms and packs (or
    programs) weights once, returning an executable plan — see
    :func:`repro.runtime.compile`.  The import is deferred so the model
    layer stays importable without the runtime package.
    """

    def compile(self, backend="reference", **kwargs):
        """Compile this trained model for ``backend``; returns a
        :class:`repro.runtime.CompiledModel`."""
        from repro.runtime import compile as compile_model
        return compile_model(self, backend=backend, **kwargs)


@dataclass
class LayerSummary:
    """One row of an architecture table (Tables I and II of the paper)."""

    name: str
    kernels: str
    padding: str
    output_shape: tuple[int, ...]
    params: int

    def row(self) -> tuple[str, str, str, str, str]:
        shape = "x".join(str(s) for s in self.output_shape)
        return (self.name, self.kernels, self.padding, shape, str(self.params))
