"""Custom CNN for ECG electrode-inversion detection (paper Table II).

=============  ================  =========  ===============
Layer          Kernels           Padding    Output shape
=============  ================  =========  ===============
Conv           32 of 13x1x12     No         738 x 1 x 32
Max. pool      2x1               No         369 x 1 x 32
Conv           32 of 11x1x32     No         359 x 1 x 32
Max. pool      2x1               No         179 x 1 x 32
Conv           32 of 9x1x32      No         171 x 1 x 32
Conv           32 of 7x1x32      No         165 x 1 x 32
Conv           32 of 5x1x32      No         161 x 1 x 32
Flatten        —                 —          5152
FC             75                —          75
Softmax        —                 —          2
=============  ================  =========  ===============

Per §III-B: "Each convolution/linear layer is followed by batch
normalization and nonlinear activation.  We replace hardtanh activation by
a sign in a binarized setting.  In addition, we also perform batch
normalization of the input data." Dropout keep probabilities are 0.95 in
convolution layers and 0.85 in the classifier.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.common import BinarizationMode, Compilable, LayerSummary
from repro.tensor import Tensor

__all__ = ["ECGNet", "ECG_INPUT_LEADS", "ECG_INPUT_SAMPLES"]

ECG_INPUT_LEADS = 12
ECG_INPUT_SAMPLES = 750

# (kernel size, followed-by-maxpool) per convolution stage of Table II.
_CONV_STAGES = ((13, True), (11, True), (9, False), (7, False), (5, False))


class ECGNet(nn.Module, Compilable):
    """ECG classification network with selectable binarization mode.

    ``filter_multiplier`` implements the paper's filter augmentation sweep
    (Fig. 7 uses 1, 2, 4, 8 and 16).
    """

    def __init__(self, mode: BinarizationMode = BinarizationMode.REAL,
                 filter_multiplier: int = 1, n_classes: int = 2,
                 n_leads: int = ECG_INPUT_LEADS,
                 n_samples: int = ECG_INPUT_SAMPLES,
                 hidden_units: int = 75,
                 conv_keep_prob: float = 0.95,
                 classifier_keep_prob: float = 0.85,
                 base_filters: int = 32,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.mode = mode
        self.filter_multiplier = filter_multiplier
        self.n_leads = n_leads
        self.n_samples = n_samples
        self.n_classes = n_classes
        # ``base_filters`` defaults to the paper's 32; benches shrink it to
        # keep the filter-augmentation sweep tractable in numpy.
        filters = base_filters * filter_multiplier
        self.filters = filters

        self.input_norm = nn.InputNorm(n_leads)

        conv1d = nn.BinaryConv1d if mode.binarize_features else nn.Conv1d
        act = (lambda: nn.Sign()) if mode.binarize_features \
            else (lambda: nn.HardTanh())

        blocks: list[nn.Module] = []
        in_ch = n_leads
        length = n_samples
        self._stage_lengths: list[tuple[int, bool]] = []
        for kernel, pooled in _CONV_STAGES:
            blocks.append(conv1d(in_ch, filters, kernel, rng=rng))
            blocks.append(nn.BatchNorm1d(filters))
            blocks.append(act())
            if conv_keep_prob < 1.0:
                blocks.append(nn.Dropout(conv_keep_prob, rng=rng))
            length = length - kernel + 1
            if pooled:
                blocks.append(nn.MaxPool1d(2))
                length //= 2
            self._stage_lengths.append((length, pooled))
            in_ch = filters
        self.conv_blocks = nn.Sequential(*blocks)
        self.final_length = length
        self.flat_features = length * filters

        if mode.binarize_classifier:
            self.pre_classifier = nn.Sequential(
                nn.BatchNorm1d(self.flat_features), nn.Sign())
            self.drop1 = nn.Dropout(classifier_keep_prob, rng=rng)
            self.fc1 = nn.BinaryLinear(self.flat_features, hidden_units,
                                       rng=rng)
            self.bn_fc1 = nn.BatchNorm1d(hidden_units)
            self.act_fc1 = nn.Sign()
            self.drop2 = nn.Dropout(classifier_keep_prob, rng=rng)
            self.fc2 = nn.BinaryLinear(hidden_units, n_classes, rng=rng)
            self.bn_fc2 = nn.BatchNorm1d(n_classes)
        else:
            self.pre_classifier = nn.Identity()
            self.drop1 = nn.Dropout(classifier_keep_prob, rng=rng)
            self.fc1 = nn.Linear(self.flat_features, hidden_units, rng=rng)
            self.bn_fc1 = nn.BatchNorm1d(hidden_units)
            self.act_fc1 = nn.HardTanh()
            self.drop2 = nn.Dropout(classifier_keep_prob, rng=rng)
            self.fc2 = nn.Linear(hidden_units, n_classes, rng=rng)
            self.bn_fc2 = nn.Identity()

    # ------------------------------------------------------------------
    def conv_stages(self) -> list[tuple[nn.Module, nn.Module,
                                        nn.Module | None]]:
        """Structural view of the conv stack: ``(conv, batch-norm, pool or
        None)`` per stage, in execution order.

        This is the hook the unified runtime uses to lower the fully
        binarized feature extractor onto a backend (activations and
        dropout carry no deployment state, so they are skipped).
        """
        stages: list[list] = []
        for layer in self.conv_blocks:
            if hasattr(layer, "kernel_size") and hasattr(layer, "weight"):
                stages.append([layer, None, None])
            elif isinstance(layer, nn.BatchNorm1d):
                stages[-1][1] = layer
            elif isinstance(layer, nn.MaxPool1d):
                stages[-1][2] = layer
        return [tuple(stage) for stage in stages]

    def fit_input_norm(self, train_inputs: np.ndarray) -> "ECGNet":
        """Fit the input batch-norm statistics on the training split."""
        self.input_norm.fit(train_inputs)
        return self

    def features(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"expected (N, leads, time), got {x.shape}")
        h = self.input_norm(x)
        h = self.conv_blocks(h)
        return h.flatten_from(1)

    def classifier(self, feats: Tensor) -> Tensor:
        h = self.pre_classifier(feats)
        h = self.drop1(h)
        h = self.act_fc1(self.bn_fc1(self.fc1(h)))
        h = self.drop2(h)
        return self.bn_fc2(self.fc2(h))

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))

    # ------------------------------------------------------------------
    def feature_parameters(self) -> int:
        total = 0
        for layer in self.conv_blocks:
            weight = getattr(layer, "weight", None)
            if weight is not None and hasattr(layer, "kernel_size"):
                total += weight.size
                bias = getattr(layer, "bias", None)
                if bias is not None:
                    total += bias.size
        return total

    def classifier_parameters(self) -> int:
        total = self.fc1.weight.size + self.fc2.weight.size
        for layer in (self.fc1, self.fc2):
            bias = getattr(layer, "bias", None)
            if bias is not None:
                total += bias.size
        return total

    def layer_summaries(self) -> list[LayerSummary]:
        """Rows of Table II for the current geometry."""
        rows: list[LayerSummary] = []
        length = self.n_samples
        in_ch = self.n_leads
        f = self.filters
        for kernel, pooled in _CONV_STAGES:
            length = length - kernel + 1
            params = f * in_ch * kernel + f
            rows.append(LayerSummary("Conv", f"{f} of {kernel}x1x{in_ch}",
                                     "No", (length, 1, f), params))
            if pooled:
                length //= 2
                rows.append(LayerSummary("Max. pool", "2x1", "No",
                                         (length, 1, f), 0))
            in_ch = f
        rows.append(LayerSummary("Flatten", "-", "-",
                                 (self.flat_features,), 0))
        rows.append(LayerSummary(
            "FC", str(self.bn_fc1.num_features), "-",
            (self.bn_fc1.num_features,),
            self.fc1.weight.size
            + (self.fc1.bias.size
               if getattr(self.fc1, "bias", None) is not None else 0)))
        rows.append(LayerSummary(
            "Softmax", "-", "-", (self.n_classes,),
            self.fc2.weight.size
            + (self.fc2.bias.size
               if getattr(self.fc2, "bias", None) is not None else 0)))
        return rows
