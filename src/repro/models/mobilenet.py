"""MobileNet V1 (Howard et al., ref. [8]) with partial binarization (§IV).

MobileNet V1 replaces most standard convolutions with depthwise-separable
blocks (a per-channel spatial convolution followed by a 1x1 channel-mixing
convolution), cutting computation roughly by the kernel area.  The paper
replaces its single fully connected classifier with a *two-layer binarized
classifier* and shows ImageNet accuracy is preserved (Fig. 8, Table III),
while fully binarizing the network costs ~16 points of top-1 (MoBiNet,
ref. [30]).

This implementation is topology-faithful (width multiplier, 13 separable
blocks, global average pool) and scale-parameterized: the full-size
``MobileNetConfig.paper()`` geometry is used for the analytic memory
accounting of Table IV, while training benches use a reduced width /
resolution / class count that numpy can handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.models.common import BinarizationMode, Compilable
from repro.tensor import Tensor

__all__ = ["MobileNetConfig", "MobileNetV1"]

# (output channels at width 1.0, stride) for the 13 separable blocks.
_BLOCKS = ((64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
           (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2),
           (1024, 1))


@dataclass
class MobileNetConfig:
    """Geometry knobs.

    ``binary_classifier_hidden`` defaults to the value that makes the
    two-layer binary classifier hold 5.7 M binary weights at full scale, as
    the paper reports (1024*2816 + 2816*1000 = 5.70 M).
    """

    width_multiplier: float = 1.0
    n_classes: int = 1000
    in_channels: int = 3
    image_size: int = 224
    n_blocks: int = 13
    binary_classifier_hidden: int | None = None
    blocks: tuple[tuple[int, int], ...] = field(default=_BLOCKS)

    @staticmethod
    def paper() -> "MobileNetConfig":
        """The full MobileNet-224 geometry of Table IV (4.2 M params)."""
        return MobileNetConfig()

    @staticmethod
    def reduced(n_classes: int = 10, image_size: int = 32,
                width_multiplier: float = 0.25,
                n_blocks: int = 13) -> "MobileNetConfig":
        """A numpy-trainable geometry exercising the same code path."""
        return MobileNetConfig(width_multiplier=width_multiplier,
                               n_classes=n_classes, image_size=image_size,
                               n_blocks=n_blocks)

    def channel(self, base: int) -> int:
        return max(8, int(round(base * self.width_multiplier)))

    def hidden_units(self) -> int:
        if self.binary_classifier_hidden is not None:
            return self.binary_classifier_hidden
        return max(16, int(round(2816 * self.width_multiplier)))


class MobileNetV1(nn.Module, Compilable):
    """MobileNet V1 with selectable binarization of classifier/features."""

    def __init__(self, config: MobileNetConfig | None = None,
                 mode: BinarizationMode = BinarizationMode.BINARY_CLASSIFIER,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config or MobileNetConfig.reduced()
        self.mode = mode
        cfg = self.config

        binarize_feat = mode.binarize_features
        std_conv = nn.BinaryConv2d if binarize_feat else nn.Conv2d
        dw_conv = nn.BinaryDepthwiseConv2d if binarize_feat \
            else nn.DepthwiseConv2d
        act = (lambda: nn.Sign()) if binarize_feat else (lambda: nn.ReLU())

        layers: list[nn.Module] = []
        first = cfg.channel(32)
        if binarize_feat:
            layers += [std_conv(cfg.in_channels, first, 3, stride=2,
                                padding=1, rng=rng)]
        else:
            layers += [std_conv(cfg.in_channels, first, 3, stride=2,
                                padding=1, bias=False, rng=rng)]
        layers += [nn.BatchNorm2d(first), act()]

        in_ch = first
        spatial = cfg.image_size // 2
        for base_out, stride in cfg.blocks[:cfg.n_blocks]:
            out_ch = cfg.channel(base_out)
            # Stop downsampling once feature maps reach 1x1 (reduced-scale
            # inputs run out of pixels before the paper's 224x224 do).
            eff_stride = stride if spatial > 1 else 1
            if binarize_feat:
                layers += [dw_conv(in_ch, 3, stride=eff_stride, padding=1,
                                   rng=rng)]
            else:
                layers += [dw_conv(in_ch, 3, stride=eff_stride, padding=1,
                                   bias=False, rng=rng)]
            layers += [nn.BatchNorm2d(in_ch), act()]
            if binarize_feat:
                layers += [nn.BinaryConv2d(in_ch, out_ch, 1, rng=rng)]
            else:
                layers += [nn.Conv2d(in_ch, out_ch, 1, bias=False, rng=rng)]
            layers += [nn.BatchNorm2d(out_ch), act()]
            in_ch = out_ch
            spatial = max(1, spatial // eff_stride)
        self.feature_extractor = nn.Sequential(*layers)
        self.global_pool = nn.GlobalAvgPool2d()
        self.feature_channels = in_ch

        if mode.binarize_classifier:
            hidden = cfg.hidden_units()
            self.hidden_units = hidden
            self.pre_classifier = nn.Sequential(
                nn.BatchNorm1d(in_ch), nn.Sign())
            self.fc1 = nn.BinaryLinear(in_ch, hidden, rng=rng)
            self.bn_fc1 = nn.BatchNorm1d(hidden)
            self.act_fc1 = nn.Sign()
            self.fc2 = nn.BinaryLinear(hidden, cfg.n_classes, rng=rng)
            self.bn_fc2 = nn.BatchNorm1d(cfg.n_classes)
        else:
            # Original MobileNet: a single real FC classifier.
            self.hidden_units = 0
            self.pre_classifier = nn.Identity()
            self.fc1 = nn.Linear(in_ch, cfg.n_classes, rng=rng)
            self.bn_fc1 = nn.Identity()
            self.act_fc1 = nn.Identity()
            self.fc2 = None
            self.bn_fc2 = nn.Identity()

    def features(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W), got {x.shape}")
        h = self.feature_extractor(x)
        return self.global_pool(h)

    def classifier(self, feats: Tensor) -> Tensor:
        h = self.pre_classifier(feats)
        h = self.act_fc1(self.bn_fc1(self.fc1(h)))
        if self.fc2 is not None:
            h = self.bn_fc2(self.fc2(h))
        return h

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))

    # ------------------------------------------------------------------
    def feature_parameters(self) -> int:
        """Weights (+biases) of the convolutional feature extractor."""
        total = 0
        for layer in self.feature_extractor:
            weight = getattr(layer, "weight", None)
            if weight is not None and not isinstance(layer, nn.BatchNorm2d):
                total += weight.size
                bias = getattr(layer, "bias", None)
                if bias is not None:
                    total += bias.size
        return total

    def classifier_parameters(self) -> int:
        total = self.fc1.weight.size
        bias = getattr(self.fc1, "bias", None)
        if bias is not None:
            total += bias.size
        if self.fc2 is not None:
            total += self.fc2.weight.size
        return total
