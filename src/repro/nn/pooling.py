"""Pooling layers.

The EEG model (Table I) uses an *overlapping* average pool (kernel 30,
stride 15) and the ECG model (Table II) non-overlapping max pools (kernel 2,
stride 2), so both layers support arbitrary stride, including stride smaller
than the kernel.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, col2im_1d
from repro.tensor.im2col import conv_output_length

__all__ = ["MaxPool1d", "AvgPool1d", "MaxPool2d", "AvgPool2d",
           "GlobalAvgPool2d"]


def _windows_1d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    n, c, length = x.shape
    l_out = (length - kernel) // stride + 1
    sn, sc, sl = x.strides
    return np.lib.stride_tricks.as_strided(
        x, shape=(n, c, l_out, kernel), strides=(sn, sc, sl * stride, sl),
        writeable=False)


class MaxPool1d(Module):
    """Max pooling over the trailing (time) axis of ``(N, C, L)``."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        n, c, length = x.shape
        k, s = self.kernel_size, self.stride
        windows = _windows_1d(x.data, k, s)
        l_out = windows.shape[2]
        arg = windows.argmax(axis=-1)                    # (N, C, L_out)
        out = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]
        starts = np.arange(l_out) * s
        positions = starts[None, None, :] + arg          # absolute indices

        def backward(grad):
            grad_x = np.zeros((n * c, length), dtype=grad.dtype)
            rows = np.repeat(np.arange(n * c), l_out)
            np.add.at(grad_x, (rows, positions.reshape(-1)), grad.reshape(-1))
            return (grad_x.reshape(n, c, length),)

        return Tensor.from_op(out, [x], backward)

    def output_length(self, length: int) -> int:
        return conv_output_length(length, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool1d(k={self.kernel_size}, s={self.stride})"


class AvgPool1d(Module):
    """Average pooling over the trailing axis; supports overlapping windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        n, c, length = x.shape
        k, s = self.kernel_size, self.stride
        windows = _windows_1d(x.data, k, s)
        out = windows.mean(axis=-1)
        l_out = out.shape[-1]

        def backward(grad):
            # Each input position receives grad/k from every window covering
            # it; col2im_1d performs exactly that scatter-add.
            grad_windows = np.broadcast_to(
                grad[..., None] / k, (n, c, l_out, k))
            cols = grad_windows.transpose(0, 2, 1, 3).reshape(n, l_out, c * k)
            return (col2im_1d(cols, (n, c, length), k, s),)

        return Tensor.from_op(out, [x], backward)

    def output_length(self, length: int) -> int:
        return conv_output_length(length, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool1d(k={self.kernel_size}, s={self.stride})"


def _windows_2d(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    n, c, h, w = x.shape
    h_out = (h - kh) // sh + 1
    w_out = (w - kw) // sw + 1
    s0, s1, s2, s3 = x.strides
    return np.lib.stride_tricks.as_strided(
        x, shape=(n, c, h_out, w_out, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3), writeable=False)


class MaxPool2d(Module):
    """Max pooling over the spatial axes of ``(N, C, H, W)``."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        ks = kernel_size if isinstance(kernel_size, (tuple, list)) \
            else (kernel_size, kernel_size)
        self.kernel_size = (int(ks[0]), int(ks[1]))
        if stride is None:
            self.stride = self.kernel_size
        else:
            st = stride if isinstance(stride, (tuple, list)) else (stride, stride)
            self.stride = (int(st[0]), int(st[1]))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        sh, sw = self.stride
        windows = _windows_2d(x.data, kh, kw, sh, sw)
        n_, c_, h_out, w_out, _, _ = windows.shape
        flat = windows.reshape(n, c, h_out, w_out, kh * kw)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        di, dj = np.unravel_index(arg, (kh, kw))
        rows = np.arange(h_out)[None, None, :, None] * sh + di
        cols = np.arange(w_out)[None, None, None, :] * sw + dj

        def backward(grad):
            grad_x = np.zeros((n * c, h, w), dtype=grad.dtype)
            batch = np.repeat(np.arange(n * c), h_out * w_out)
            np.add.at(grad_x,
                      (batch, rows.reshape(-1), cols.reshape(-1)),
                      grad.reshape(-1))
            return (grad_x.reshape(n, c, h, w),)

        return Tensor.from_op(out, [x], backward)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average pooling over the spatial axes of ``(N, C, H, W)``."""

    def __init__(self, kernel_size, stride=None):
        super().__init__()
        ks = kernel_size if isinstance(kernel_size, (tuple, list)) \
            else (kernel_size, kernel_size)
        self.kernel_size = (int(ks[0]), int(ks[1]))
        if stride is None:
            self.stride = self.kernel_size
        else:
            st = stride if isinstance(stride, (tuple, list)) else (stride, stride)
            self.stride = (int(st[0]), int(st[1]))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        sh, sw = self.stride
        windows = _windows_2d(x.data, kh, kw, sh, sw)
        out = windows.mean(axis=(-1, -2))
        h_out, w_out = out.shape[2], out.shape[3]
        area = kh * kw

        def backward(grad):
            grad_x = np.zeros((n, c, h, w), dtype=grad.dtype)
            g = grad / area
            for i in range(kh):
                for j in range(kw):
                    grad_x[:, :, i:i + h_out * sh:sh, j:j + w_out * sw:sw] += g
            return (grad_x,)

        return Tensor.from_op(out, [x], backward)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Spatial global average, producing ``(N, C)`` — MobileNet's final pool."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
