"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "SquaredHingeLoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class labels.

    Combines log-softmax and negative log-likelihood, matching the "softmax
    layer necessary only for training" of the paper's models (§III-A).
    """

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets)
        if targets.ndim != 1:
            raise ValueError(f"targets must be 1-D class ids, got {targets.shape}")
        n = logits.shape[0]
        log_probs = logits.log_softmax(axis=-1)
        picked = log_probs[np.arange(n), targets]
        return -picked.mean()

    def __repr__(self) -> str:
        return "CrossEntropyLoss()"


class MSELoss(Module):
    """Mean squared error against a dense target array."""

    def forward(self, pred: Tensor, target: np.ndarray) -> Tensor:
        diff = pred - Tensor(np.asarray(target))
        return (diff * diff).mean()

    def __repr__(self) -> str:
        return "MSELoss()"


class SquaredHingeLoss(Module):
    """Squared hinge loss on ±1 one-hot targets.

    The original BNN paper (ref. [12]) trains with squared hinge; provided
    for ablations against cross-entropy.
    """

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets)
        n, k = logits.shape
        signs = -np.ones((n, k))
        signs[np.arange(n), targets] = 1.0
        margin = (1.0 - logits * Tensor(signs)).relu()
        return (margin * margin).mean()

    def __repr__(self) -> str:
        return "SquaredHingeLoss()"
