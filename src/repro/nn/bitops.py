"""Packed-word XNOR-popcount: the digital kernel BNN software actually runs.

Eq. (3) is implemented two ways in this repository:

* :func:`repro.nn.binary.xnor_popcount` — an integer matmul formulation,
  convenient for verification because it mirrors the algebra;
* this module — the production formulation: activation and weight bits are
  packed 64 per machine word, XNOR is one bitwise op per word, and the
  agreement count is a hardware ``popcount``.  This is how CPU BNN
  inference libraries (and the paper's ref. [12] kernels) achieve their
  32-64x speedup over float, and it doubles as the golden model for the
  popcount adder tree of the Fig. 5 architecture.

Bit convention matches :func:`repro.nn.binary.to_bits`: bit 1 is weight
+1.  Words are filled little-endian (feature ``j`` lands in word ``j//64``
bit ``j%64``); trailing pad bits are zero in both operands, so XNOR counts
them as agreements — :func:`packed_xnor_popcount` subtracts the pad
contribution to stay exact for any width.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_bits", "unpack_bits", "packed_xnor_popcount",
           "PackedBinaryDense"]

_WORD = 64


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., n)`` array of 0/1 into ``(..., ceil(n/64))`` uint64.

    The width ``n`` is not stored; callers keep it (the folded layers all
    know their ``in_features``).
    """
    bits = np.asarray(bits)
    if bits.ndim < 1:
        raise ValueError("bits must have at least one axis")
    if bits.size and (bits.max() > 1 or bits.min() < 0):
        raise ValueError("bits must be 0/1")
    n = bits.shape[-1]
    n_words = -(-n // _WORD) if n else 0
    padded = np.zeros(bits.shape[:-1] + (n_words * _WORD,), dtype=np.uint64)
    padded[..., :n] = bits.astype(np.uint64)
    words = padded.reshape(bits.shape[:-1] + (n_words, _WORD))
    shifts = np.arange(_WORD, dtype=np.uint64)
    return (words << shifts).sum(axis=-1, dtype=np.uint64)


def unpack_bits(words: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., n_words) -> (..., width)``."""
    words = np.asarray(words, dtype=np.uint64)
    if width < 0:
        raise ValueError("width must be non-negative")
    if words.shape[-1] * _WORD < width:
        raise ValueError(
            f"{words.shape[-1]} words hold at most "
            f"{words.shape[-1] * _WORD} bits, asked for {width}")
    shifts = np.arange(_WORD, dtype=np.uint64)
    bits = (words[..., :, None] >> shifts) & np.uint64(1)
    flat = bits.reshape(words.shape[:-1] + (words.shape[-1] * _WORD,))
    return flat[..., :width].astype(np.uint8)


def packed_xnor_popcount(x_words: np.ndarray, w_words: np.ndarray,
                         width: int) -> np.ndarray:
    """popcount(XNOR(x, w)) over packed words: ``(N, W) x (M, W) -> (N, M)``.

    ``width`` is the true bit width; pad-bit agreements are subtracted so
    the result equals :func:`repro.nn.binary.xnor_popcount` on the unpacked
    operands exactly.
    """
    x_words = np.asarray(x_words, dtype=np.uint64)
    w_words = np.asarray(w_words, dtype=np.uint64)
    if x_words.ndim != 2 or w_words.ndim != 2:
        raise ValueError("operands must be 2-D (batch/neurons x words)")
    if x_words.shape[1] != w_words.shape[1]:
        raise ValueError(
            f"word-count mismatch: {x_words.shape} vs {w_words.shape}")
    n_words = x_words.shape[1]
    if not 0 <= width <= n_words * _WORD:
        raise ValueError(
            f"width {width} impossible for {n_words} words")
    # XNOR = NOT(XOR); popcount over all words, then drop the padding:
    # both operands have 0 pads, which XNOR counts as agreeing.
    xnor = ~(x_words[:, None, :] ^ w_words[None, :, :])
    agreements = np.bitwise_count(xnor).sum(axis=-1, dtype=np.int64)
    pad_bits = n_words * _WORD - width
    return agreements - pad_bits


class PackedBinaryDense:
    """A folded binary dense layer pre-packed for word-parallel inference.

    Wraps :class:`repro.nn.binary.FoldedBinaryDense` semantics (popcount vs
    threshold with batch-norm sign handling) over the packed kernel; the
    property tests pin bit-exact agreement with the unpacked layer.
    """

    def __init__(self, folded):
        self.in_features = folded.in_features
        self.out_features = folded.out_features
        self.weight_words = pack_bits(folded.weight_bits)
        self.theta = folded.theta
        self.gamma_sign = folded.gamma_sign
        self.beta_sign = folded.beta_sign

    def forward_words(self, x_words: np.ndarray) -> np.ndarray:
        """Packed activations in, packed activations out."""
        return pack_bits(self.forward_bits_from_words(x_words))

    def forward_bits_from_words(self, x_words: np.ndarray) -> np.ndarray:
        pc = packed_xnor_popcount(x_words, self.weight_words,
                                  self.in_features)
        dot = 2 * pc - self.in_features
        pos = dot >= self.theta[None, :]
        neg = dot <= self.theta[None, :]
        out = np.where(self.gamma_sign[None, :] > 0, pos,
                       np.where(self.gamma_sign[None, :] < 0, neg,
                                self.beta_sign[None, :] >= 0))
        return out.astype(np.uint8)

    def forward_bits(self, x_bits: np.ndarray) -> np.ndarray:
        """Unpacked-in, unpacked-out convenience (packs internally)."""
        return self.forward_bits_from_words(pack_bits(x_bits))
