"""Packed-word XNOR-popcount: the digital kernels BNN software actually runs.

Eq. (3) is implemented two ways in this repository:

* :func:`repro.nn.binary.xnor_popcount` — an integer matmul formulation,
  convenient for verification because it mirrors the algebra;
* this module — the production formulation: activation and weight bits are
  packed 64 per machine word, XNOR is one bitwise op per word, and the
  agreement count is a hardware ``popcount``.  This is how CPU BNN
  inference libraries (and the paper's ref. [12] kernels) achieve their
  32-64x speedup over float, and it doubles as the golden model for the
  popcount adder tree of the Fig. 5 architecture.

Three families of packed kernels live here:

* dense — :class:`PackedBinaryDense` (hidden, sign-activated) and
  :class:`PackedOutputDense` (final affine/argmax layer);
* standard convolutions — :class:`PackedBinaryConv1d` /
  :class:`PackedBinaryConv2d` lower the receptive fields to bit-packed
  im2col patches and run them through :func:`packed_xnor_popcount`;
* depthwise convolutions — :class:`PackedBinaryConv2d` with a
  ``depthwise`` fold uses a *bit-sliced* kernel: feature maps are packed
  channel-major (64 channels per word), tap disagreements accumulate in
  carry-save counter bit-planes, and the folded batch-norm threshold is
  applied by a bit-sliced comparator, so the whole layer never leaves the
  packed domain.

Bit convention matches :func:`repro.nn.binary.to_bits`: bit 1 is weight
+1.  Words are filled little-endian (feature ``j`` lands in word ``j//64``
bit ``j%64``); trailing pad bits are zero in both operands, so XNOR counts
them as agreements — :func:`pad_correction` quantifies that bias and
:func:`packed_xnor_popcount` subtracts it to stay exact for any width.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.nn.binary import (FoldedBinaryDense, FoldedOutputDense,
                             threshold_bits)
from repro.tensor.im2col import im2col_1d, im2col_2d

__all__ = ["WORD_BITS", "pack_bits", "unpack_bits", "pad_correction",
           "packed_column_slice", "packed_xnor_popcount",
           "packed_xnor_popcount_stacked", "packed_xor_counts",
           "PackedBinaryDense", "PackedOutputDense",
           "PackedBinaryConv1d", "PackedBinaryConv2d",
           "pack_feature_map", "unpack_feature_map"]

_WORD = 64
#: Bits per packed machine word — the shared constant every word-grid
#: computation (floorplan shard metadata, stacked shard plans) aligns to.
WORD_BITS = _WORD
_LITTLE_ENDIAN = sys.byteorder == "little"


def _words_view(byte_array: np.ndarray) -> np.ndarray:
    """Reinterpret a ``(..., 8k)`` uint8 array as ``(..., k)`` uint64 words
    in the module's little-endian bit order."""
    words = np.ascontiguousarray(byte_array).view(np.uint64)
    return words if _LITTLE_ENDIAN else words.byteswap()


def _bytes_view(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_words_view`."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if not _LITTLE_ENDIAN:
        words = words.byteswap()
    return words.view(np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., n)`` array of 0/1 into ``(..., ceil(n/64))`` uint64.

    The width ``n`` is not stored; callers keep it (the folded layers all
    know their ``in_features``).  Implemented with :func:`numpy.packbits`,
    which runs at C speed — packing is on the per-batch hot path of every
    packed layer, not just a one-time weight transform.
    """
    bits = np.asarray(bits)
    if bits.ndim < 1:
        raise ValueError("bits must have at least one axis")
    if bits.size and (bits.max() > 1 or bits.min() < 0):
        raise ValueError("bits must be 0/1")
    n = bits.shape[-1]
    n_words = -(-n // _WORD) if n else 0
    if n_words == 0:
        return np.zeros(bits.shape[:-1] + (0,), dtype=np.uint64)
    packed = np.packbits(np.ascontiguousarray(bits, dtype=np.uint8),
                         axis=-1, bitorder="little")
    pad = n_words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1)
    return _words_view(packed)


def unpack_bits(words: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., n_words) -> (..., width)``."""
    words = np.asarray(words, dtype=np.uint64)
    if width < 0:
        raise ValueError("width must be non-negative")
    if words.shape[-1] * _WORD < width:
        raise ValueError(
            f"{words.shape[-1]} words hold at most "
            f"{words.shape[-1] * _WORD} bits, asked for {width}")
    if width == 0:
        return np.zeros(words.shape[:-1] + (0,), dtype=np.uint8)
    bits = np.unpackbits(_bytes_view(words), axis=-1, bitorder="little")
    return bits[..., :width]


def pad_correction(n_words: int, width: int) -> int:
    """Agreements contributed by the zero pad bits of a packed operand pair.

    Both operands of :func:`packed_xnor_popcount` zero their trailing pad
    bits, so XNOR sees them agree: a raw popcount over ``n_words`` words
    over-counts by exactly ``n_words * 64 - width``.  Exposed as its own
    helper because every packed layer that reasons about raw popcounts
    (and the Fig. 5 popcount-tree golden model) needs the same correction.
    """
    if not 0 <= width <= n_words * _WORD:
        raise ValueError(
            f"width {width} impossible for {n_words} words")
    return n_words * _WORD - width


def packed_xnor_popcount(x_words: np.ndarray, w_words: np.ndarray,
                         width: int) -> np.ndarray:
    """popcount(XNOR(x, w)) over packed words: ``(N, W) x (M, W) -> (N, M)``.

    ``width`` is the true bit width; pad-bit agreements are subtracted (see
    :func:`pad_correction`) so the result equals
    :func:`repro.nn.binary.xnor_popcount` on the unpacked operands exactly.

    Internally counts XOR *disagreements* word by word into a compact
    accumulator: for the large patch batches produced by the conv kernels
    this avoids materializing the ``(N, M, W)`` XNOR tensor and its slow
    trailing-axis reduction.
    """
    x_words = np.asarray(x_words, dtype=np.uint64)
    w_words = np.asarray(w_words, dtype=np.uint64)
    if x_words.ndim != 2 or w_words.ndim != 2:
        raise ValueError("operands must be 2-D (batch/neurons x words)")
    if x_words.shape[1] != w_words.shape[1]:
        raise ValueError(
            f"word-count mismatch: {x_words.shape} vs {w_words.shape}")
    n_words = x_words.shape[1]
    pad_bits = pad_correction(n_words, width)   # validates width too
    n, m = x_words.shape[0], w_words.shape[0]
    if n_words == 0 or n == 0 or m == 0:
        return np.zeros((n, m), dtype=np.int64)
    if n * m < 32768:
        # Small output: one broadcast XNOR tensor beats the loop overhead.
        xnor = ~(x_words[:, None, :] ^ w_words[None, :, :])
        agreements = np.bitwise_count(xnor).sum(axis=-1, dtype=np.int64)
        return agreements - pad_bits
    # Large output (conv patch batches): accumulate disagreements per word
    # with reused buffers; agreements = width - disagreements because the
    # zero pads never disagree.
    return width - packed_xor_counts(x_words, w_words).astype(np.int64)


def packed_xor_counts(x_words: np.ndarray, w_words: np.ndarray) -> np.ndarray:
    """XOR *disagreement* counts over packed words: ``(N, W) x (M, W) ->
    (N, M)`` unsigned counts.

    Zero pad bits never disagree, so no width correction is needed — this
    is the raw kernel the integer-threshold conv layers consume (the
    agreement count is ``width - disagreements``; see
    :func:`packed_xnor_popcount`).
    """
    x_words = np.asarray(x_words, dtype=np.uint64)
    w_words = np.asarray(w_words, dtype=np.uint64)
    if x_words.ndim != 2 or w_words.ndim != 2:
        raise ValueError("operands must be 2-D (batch/neurons x words)")
    if x_words.shape[1] != w_words.shape[1]:
        raise ValueError(
            f"word-count mismatch: {x_words.shape} vs {w_words.shape}")
    n_words = x_words.shape[1]
    n, m = x_words.shape[0], w_words.shape[0]
    acc_dtype = np.uint16 if n_words * _WORD < 65536 else np.uint32
    acc = np.zeros((n, m), dtype=acc_dtype)
    xor_buf = np.empty((n, m), dtype=np.uint64)
    cnt_buf = np.empty((n, m), dtype=np.uint8)
    w_cols = np.ascontiguousarray(w_words.T)
    for k in range(n_words):
        np.bitwise_xor(x_words[:, k, None], w_cols[k][None, :], out=xor_buf)
        np.bitwise_count(xor_buf, out=cnt_buf)
        np.add(acc, cnt_buf, out=acc)
    return acc


def packed_column_slice(words: np.ndarray, start: int,
                        stop: int) -> np.ndarray:
    """Re-pack bit columns ``[start, stop)`` of already-packed rows.

    ``words`` holds rows packed by :func:`pack_bits`; the result equals
    ``pack_bits(unpack_bits(words, ...)[..., start:stop])`` but never
    leaves the word domain: each output word is a funnel shift of (at
    most) two adjacent input words, so slicing a column range out of a
    wide packed batch costs a handful of vectorized shifts instead of an
    unpack / ``numpy.packbits`` round trip per misaligned offset.  This
    is the per-shard activation slicing primitive of the sharded
    fan-in dataflow.

    Bits past ``stop`` in the last output word are zeroed, preserving
    the :func:`pack_bits` zero-pad invariant the popcount kernels rely
    on.
    """
    words = np.asarray(words, dtype=np.uint64)
    if not 0 <= start <= stop:
        raise ValueError(f"bad column range [{start}, {stop})")
    if stop > words.shape[-1] * _WORD:
        raise ValueError(
            f"column range [{start}, {stop}) exceeds the "
            f"{words.shape[-1] * _WORD} packed bits per row")
    width = stop - start
    out_words = -(-width // _WORD)
    if out_words == 0:
        return np.zeros(words.shape[:-1] + (0,), dtype=np.uint64)

    w0 = start // _WORD
    shift = start % _WORD

    def _span(first: int) -> np.ndarray:
        span = words[..., first:first + out_words]
        pad = out_words - span.shape[-1]
        if pad:
            span = np.concatenate(
                [span, np.zeros(span.shape[:-1] + (pad,), dtype=np.uint64)],
                axis=-1)
        return span

    if shift == 0:
        out = _span(w0).copy()
    else:
        out = _span(w0) >> np.uint64(shift)
        out |= _span(w0 + 1) << np.uint64(_WORD - shift)
    tail = width - _WORD * (out_words - 1)
    if tail < _WORD:
        out[..., -1] &= np.uint64((1 << tail) - 1)
    return out


def packed_xnor_popcount_stacked(x_words: np.ndarray, w_words: np.ndarray,
                                 widths) -> np.ndarray:
    """Batched :func:`packed_xnor_popcount` over a leading shard axis:
    ``(S, N, W) x (S, M, W) -> (S, N, M)`` agreement counts.

    One kernel launch covers every shard of a stacked plan — the fused
    alternative to looping ``S`` independent 2-D popcounts.  ``x_words``
    may also be a shared ``(N, W)`` activation batch, broadcast across
    the shard axis (the sharded fast path packs the batch once at full
    width and reuses it for every fan-out stripe).

    ``widths`` gives each shard's true bit width (scalar or ``(S,)``).
    Both operands must zero every bit outside their true width — the
    :func:`pack_bits` invariant — so pad bits only ever XNOR-agree and
    the exact per-shard count is ``widths[s] - disagreements``, computed
    with the same word-by-word disagreement accumulator as
    :func:`packed_xor_counts` (no ``(S, N, M, W)`` tensor is ever
    materialized).
    """
    x_words = np.asarray(x_words, dtype=np.uint64)
    w_words = np.asarray(w_words, dtype=np.uint64)
    if w_words.ndim != 3:
        raise ValueError(
            f"weights must be (shards, neurons, words), got {w_words.shape}")
    shared = x_words.ndim == 2
    if not shared and (x_words.ndim != 3
                       or x_words.shape[0] != w_words.shape[0]):
        raise ValueError(
            f"activations must be (N, words) or ({w_words.shape[0]}, N, "
            f"words), got {x_words.shape}")
    if x_words.shape[-1] != w_words.shape[-1]:
        raise ValueError(
            f"word-count mismatch: {x_words.shape} vs {w_words.shape}")
    s, m, n_words = w_words.shape
    n = x_words.shape[0] if shared else x_words.shape[1]
    widths = np.broadcast_to(
        np.asarray(widths, dtype=np.int64), (s,))
    if widths.size and (widths.min() < 0
                        or widths.max() > n_words * _WORD):
        raise ValueError(
            f"widths must lie in [0, {n_words * _WORD}], got "
            f"[{widths.min()}, {widths.max()}]")
    if s == 0 or n == 0 or m == 0:
        return np.zeros((s, n, m), dtype=np.int64)
    if n_words == 0:
        return np.broadcast_to(widths[:, None, None], (s, n, m)).copy()
    acc_dtype = np.uint16 if n_words * _WORD < 65536 else np.uint32
    acc = np.zeros((s, n, m), dtype=acc_dtype)
    xor_buf = np.empty((s, n, m), dtype=np.uint64)
    cnt_buf = np.empty((s, n, m), dtype=np.uint8)
    # Word-major views keep each iteration's operands contiguous.
    x_cols = np.ascontiguousarray(
        x_words.T if shared else x_words.transpose(2, 0, 1))
    w_cols = np.ascontiguousarray(w_words.transpose(2, 0, 1))
    for k in range(n_words):
        xk = x_cols[k][None, :, None] if shared else x_cols[k][:, :, None]
        np.bitwise_xor(xk, w_cols[k][:, None, :], out=xor_buf)
        np.bitwise_count(xor_buf, out=cnt_buf)
        np.add(acc, cnt_buf, out=acc)
    return widths[:, None, None] - acc.astype(np.int64)


# ---------------------------------------------------------------------------
# Channel-major feature-map packing (bit-sliced kernels)
# ---------------------------------------------------------------------------
def pack_feature_map(bits: np.ndarray) -> np.ndarray:
    """Pack ``(N, C, H, W)`` activation bits channel-major:
    ``(N, H, W, ceil(C/64))`` uint64, channel ``c`` at bit ``c % 64`` of
    word ``c // 64`` — the layout the bit-sliced depthwise kernel and the
    pointwise fast path consume."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) bits, got {bits.shape}")
    return pack_bits(np.ascontiguousarray(bits.transpose(0, 2, 3, 1)))


def unpack_feature_map(words: np.ndarray, channels: int) -> np.ndarray:
    """Inverse of :func:`pack_feature_map`: back to ``(N, C, H, W)``."""
    bits = unpack_bits(words, channels)          # (N, H, W, C)
    return np.ascontiguousarray(bits.transpose(0, 3, 1, 2))


def _xor_count_bounds(theta: np.ndarray, fan_in: int
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Integer disagreement-count thresholds equivalent to the float ones.

    With ``x`` XOR disagreements the ±1 dot product is ``fan_in - 2x``, so
    ``dot >= theta``  ⇔  ``x <= x_le``   and   ``dot <= theta``  ⇔
    ``x >= x_ge``.  The bounds are computed by float division then *nudged*
    until they agree with the direct comparison, so integer thresholding is
    bit-exact with the reference layers even when ``theta`` sits on a
    representable dot value.  ``theta = +inf`` (gamma == 0 channels) maps
    to never/always sentinels outside ``[0, fan_in]``.
    """
    theta = np.asarray(theta, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        x_le = np.floor((fan_in - theta) / 2.0)
        x_ge = np.ceil((fan_in - theta) / 2.0)
    # Non-finite thresholds keep the sign semantics of the float compare:
    # dot >= -inf is always true (x_le -> always), dot >= +inf never;
    # dot <= +inf always (x_ge -> always), dot <= -inf never.
    x_le = np.where(np.isfinite(x_le), x_le,
                    np.where(np.isneginf(theta), fan_in + 1.0, -1.0))
    x_ge = np.where(np.isfinite(x_ge), x_ge,
                    np.where(np.isposinf(theta), 0.0, fan_in + 1.0))
    x_le = np.clip(x_le, -1, fan_in + 1).astype(np.int64)
    x_ge = np.clip(x_ge, -1, fan_in + 1).astype(np.int64)
    finite = np.isfinite(theta)
    for _ in range(2):   # float rounding can be off by at most one step
        x_le = np.where(finite & (fan_in - 2.0 * x_le < theta),
                        x_le - 1, x_le)
        x_le = np.where(finite & (fan_in - 2.0 * (x_le + 1) >= theta),
                        x_le + 1, x_le)
        x_ge = np.where(finite & (fan_in - 2.0 * x_ge > theta),
                        x_ge + 1, x_ge)
        x_ge = np.where(finite & (x_ge >= 1)
                        & (fan_in - 2.0 * (x_ge - 1) <= theta),
                        x_ge - 1, x_ge)
    return x_le, x_ge


class _IntegerThreshold:
    """Folded batch-norm threshold applied to raw disagreement counts.

    Precomputes, per output channel, the integer count bounds equivalent
    to the float ``dot``-vs-``theta`` comparison (see
    :func:`_xor_count_bounds`), with never/always channels encoded as
    out-of-range sentinels so the hot path is two integer compares and two
    ORs — no float arithmetic.
    """

    def __init__(self, theta: np.ndarray, gamma_sign: np.ndarray,
                 beta_sign: np.ndarray, fan_in: int):
        x_le, x_ge = _xor_count_bounds(theta, fan_in)
        pos = gamma_sign > 0
        neg = gamma_sign < 0
        const = (gamma_sign == 0) & (beta_sign >= 0)
        const = const | (pos & (x_le >= fan_in)) | (neg & (x_ge <= 0))
        live_pos = pos & (0 <= x_le) & (x_le < fan_in)
        live_neg = neg & (0 < x_ge) & (x_ge <= fan_in)
        self.const = const
        self.x_le = np.where(live_pos, x_le, -1).astype(np.int32)
        self.x_ge = np.where(live_neg, x_ge, fan_in + 1).astype(np.int32)

    def apply(self, counts: np.ndarray) -> np.ndarray:
        """``counts``: ``(N, M)`` XOR disagreements -> output bits."""
        out = (counts <= self.x_le[None, :]) \
            | (counts >= self.x_ge[None, :]) \
            | self.const[None, :]
        return out.astype(np.uint8)


# ---------------------------------------------------------------------------
# Dense layers
# ---------------------------------------------------------------------------
class PackedBinaryDense:
    """A folded binary dense layer pre-packed for word-parallel inference.

    Wraps :class:`repro.nn.binary.FoldedBinaryDense` semantics (popcount vs
    threshold with batch-norm sign handling) over the packed kernel; the
    property tests pin bit-exact agreement with the unpacked layer.  The
    weight words are packed **once here, at construction** — per-call work
    is only the activation packing and the popcount itself.
    """

    def __init__(self, folded: FoldedBinaryDense):
        self.in_features = folded.in_features
        self.out_features = folded.out_features
        self.weight_words = pack_bits(folded.weight_bits)
        self.theta = folded.theta
        self.gamma_sign = folded.gamma_sign
        self.beta_sign = folded.beta_sign

    def forward_words(self, x_words: np.ndarray) -> np.ndarray:
        """Packed activations in, packed activations out."""
        return pack_bits(self.forward_bits_from_words(x_words))

    def forward_bits_from_words(self, x_words: np.ndarray) -> np.ndarray:
        pc = packed_xnor_popcount(x_words, self.weight_words,
                                  self.in_features)
        dot = 2 * pc - self.in_features
        return threshold_bits(dot, self.theta[None, :],
                              self.gamma_sign[None, :],
                              self.beta_sign[None, :])

    def forward_bits(self, x_bits: np.ndarray) -> np.ndarray:
        """Unpacked-in, unpacked-out convenience (packs internally)."""
        return self.forward_bits_from_words(pack_bits(x_bits))

    def __repr__(self) -> str:
        return (f"PackedBinaryDense(in={self.in_features}, "
                f"out={self.out_features}, "
                f"words={self.weight_words.shape[1]})")


class PackedOutputDense:
    """The final binary classifier layer over the packed kernel.

    Mirrors :class:`repro.nn.binary.FoldedOutputDense`: the ±1 dot product
    comes from a packed popcount, the batch-norm affine is applied per
    class, and the prediction is the argmax — no sign follows the last
    layer.
    """

    def __init__(self, folded: FoldedOutputDense):
        self.in_features = folded.in_features
        self.weight_words = pack_bits(folded.weight_bits)
        self.scale = folded.scale
        self.offset = folded.offset

    def forward_scores_from_words(self, x_words: np.ndarray) -> np.ndarray:
        pc = packed_xnor_popcount(x_words, self.weight_words,
                                  self.in_features)
        dot = 2 * pc - self.in_features
        return dot * self.scale[None, :] + self.offset[None, :]

    def forward_scores(self, x_bits: np.ndarray) -> np.ndarray:
        """Class scores from unpacked activation bits."""
        return self.forward_scores_from_words(pack_bits(x_bits))

    def predict(self, x_bits: np.ndarray) -> np.ndarray:
        """Predicted class labels from unpacked activation bits."""
        return self.forward_scores(x_bits).argmax(axis=1)

    def __repr__(self) -> str:
        return (f"PackedOutputDense(in={self.in_features}, "
                f"classes={len(self.scale)})")


# ---------------------------------------------------------------------------
# Standard convolutions: bit-packed im2col
# ---------------------------------------------------------------------------
class PackedBinaryConv1d:
    """A folded binary 1-D convolution over the packed kernel.

    Lowers each receptive field to a bit-packed im2col row (the strided
    window view costs nothing; packing runs through
    :func:`numpy.packbits`), then one :func:`packed_xnor_popcount` computes
    every (position, output channel) pair.  Weight words and the integer
    disagreement thresholds are prepared once at construction.
    """

    def __init__(self, folded):
        self.folded = folded
        self.weight_words = pack_bits(folded.weight_bits)
        self._threshold = _IntegerThreshold(folded.theta, folded.gamma_sign,
                                            folded.beta_sign, folded.fan_in)

    def forward_bits(self, x_bits: np.ndarray) -> np.ndarray:
        """``(N, C_in, L)`` bits -> ``(N, C_out, L_out)`` bits."""
        f = self.folded
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        if x_bits.ndim != 3 or x_bits.shape[1] != f.in_channels:
            raise ValueError(
                f"expected (N, {f.in_channels}, L) bits, got {x_bits.shape}")
        n, _, length = x_bits.shape
        l_out = f.output_length(length)
        patches = im2col_1d(x_bits, f.kernel_size, f.stride).reshape(
            n * l_out, f.fan_in)
        counts = packed_xor_counts(pack_bits(patches), self.weight_words)
        out = self._threshold.apply(counts)
        return out.reshape(n, l_out, f.out_channels).transpose(0, 2, 1)

    def __repr__(self) -> str:
        f = self.folded
        return (f"PackedBinaryConv1d({f.in_channels}->{f.out_channels}, "
                f"k={f.kernel_size}, words={self.weight_words.shape[1]})")


class PackedBinaryConv2d:
    """A folded binary 2-D convolution over the packed kernels.

    Standard convolutions use the bit-packed im2col route of
    :class:`PackedBinaryConv1d` generalized to 2-D.  Depthwise folds use
    the bit-sliced kernel: channel-major packed maps, carry-save counter
    planes for the per-tap disagreements, and a bit-sliced comparator for
    the folded threshold, so 64 channels advance per machine word and the
    layer never unpacks.  ``forward_map`` chains packed channel-major maps
    between layers (depthwise -> pointwise stays in the packed domain).
    """

    def __init__(self, folded):
        self.folded = folded
        kh, kw = folded.kernel_size
        if folded.depthwise:
            c = folded.in_channels
            self._n_chan_words = -(-c // _WORD)
            # (KH, KW, Wc): tap (kh, kw) of every channel, channel-major.
            w = folded.weight_bits.reshape(c, kh, kw)
            self.weight_words = pack_bits(
                np.ascontiguousarray(w.transpose(1, 2, 0)))
            self._prepare_bitsliced_threshold()
        else:
            self.weight_words = pack_bits(folded.weight_bits)
            self._threshold = _IntegerThreshold(
                folded.theta, folded.gamma_sign, folded.beta_sign,
                folded.fan_in)

    # -- bit-sliced threshold preparation (depthwise) -------------------
    def _prepare_bitsliced_threshold(self) -> None:
        f = self.folded
        c = f.in_channels
        x_le, x_ge = _xor_count_bounds(f.theta, f.fan_in)
        pos = f.gamma_sign > 0
        neg = f.gamma_sign < 0
        const_one = (f.gamma_sign == 0) & (f.beta_sign >= 0)
        # Saturated bounds collapse to constant channels so the comparator
        # only ever sees representable thresholds.
        always_pos = pos & (x_le >= f.fan_in)
        never_pos = pos & (x_le < 0)
        always_neg = neg & (x_ge <= 0)
        never_neg = neg & (x_ge > f.fan_in)
        const_one = const_one | always_pos | always_neg
        pos = pos & ~always_pos & ~never_pos
        neg = neg & ~always_neg & ~never_neg
        self._pos_mask = pack_bits(pos.astype(np.uint8))
        self._neg_mask = pack_bits(neg.astype(np.uint8))
        self._const_one = pack_bits(const_one.astype(np.uint8))
        self._n_counter_planes = max(1, int(f.fan_in).bit_length())
        self._le_planes = self._threshold_planes(
            np.where(pos, x_le, 0))
        self._ge_planes = self._threshold_planes(
            np.where(neg, x_ge, 0))
        valid = np.zeros(c, dtype=np.uint8)
        valid[:] = 1
        self._valid_mask = pack_bits(valid)

    def _threshold_planes(self, thresholds: np.ndarray) -> np.ndarray:
        """Channel-packed bit-planes of per-channel integer thresholds."""
        planes = []
        for i in range(self._n_counter_planes):
            planes.append(pack_bits(
                ((thresholds >> i) & 1).astype(np.uint8)))
        return np.stack(planes)     # (planes, Wc)

    # -- execution -------------------------------------------------------
    def forward_bits(self, x_bits: np.ndarray) -> np.ndarray:
        """``(N, C_in, H, W)`` bits -> ``(N, C_out, H_out, W_out)`` bits."""
        f = self.folded
        x_bits = np.asarray(x_bits, dtype=np.uint8)
        if x_bits.ndim != 4 or x_bits.shape[1] != f.in_channels:
            raise ValueError(
                f"expected (N, {f.in_channels}, H, W) bits, got "
                f"{x_bits.shape}")
        if f.depthwise:
            words = self._depthwise_map(pack_feature_map(x_bits))
            return unpack_feature_map(words, f.out_channels)
        return self._standard_bits(x_bits)

    def forward_map(self, x_words: np.ndarray) -> np.ndarray:
        """Channel-major packed maps in and out: ``(N, H, W, Wc_in)`` ->
        ``(N, H_out, W_out, Wc_out)``.

        Depthwise and pointwise (1x1, stride 1) layers run natively on the
        packed maps; other geometries bridge through the im2col route.
        """
        f = self.folded
        if f.depthwise:
            return self._depthwise_map(x_words)
        if f.kernel_size == (1, 1) and f.stride == (1, 1):
            return self._pointwise_map(x_words)
        bits = unpack_feature_map(x_words, f.in_channels)
        return pack_feature_map(self._standard_bits(bits))

    def _standard_bits(self, x_bits: np.ndarray) -> np.ndarray:
        f = self.folded
        n, _, height, width = x_bits.shape
        h_out, w_out = f.output_shape(height, width)
        patches = im2col_2d(x_bits, f.kernel_size, f.stride).reshape(
            n * h_out * w_out, f.fan_in)
        counts = packed_xor_counts(pack_bits(patches), self.weight_words)
        out = self._threshold.apply(counts)
        return out.reshape(n, h_out, w_out, f.out_channels) \
            .transpose(0, 3, 1, 2)

    def _pointwise_map(self, x_words: np.ndarray) -> np.ndarray:
        """1x1 convolution: the channel words *are* the im2col patches."""
        f = self.folded
        n, height, width, n_words = x_words.shape
        flat = np.ascontiguousarray(x_words).reshape(-1, n_words)
        counts = packed_xor_counts(flat, self.weight_words)
        out = self._threshold.apply(counts)
        return pack_bits(out).reshape(n, height, width, -1)

    def _depthwise_map(self, x_words: np.ndarray) -> np.ndarray:
        """Bit-sliced depthwise kernel, 64 channels per word.

        Carry-save accumulation: each tap XOR produces one disagreement
        bit-plane per channel lane; ripple-carry addition over the counter
        planes keeps per-channel disagreement counts without ever
        unpacking.  A bit-sliced magnitude comparator then applies the
        folded batch-norm threshold directly on the planes.
        """
        f = self.folded
        kh, kw = f.kernel_size
        sh, sw = f.stride
        n, height, width, n_words = x_words.shape
        h_out, w_out = f.output_shape(height, width)
        counters = [np.zeros((n, h_out, w_out, n_words), dtype=np.uint64)
                    for _ in range(self._n_counter_planes)]
        for i in range(kh):
            for j in range(kw):
                plane = (x_words[:, i:i + h_out * sh:sh,
                                 j:j + w_out * sw:sw, :]
                         ^ self.weight_words[i, j])
                for level in range(self._n_counter_planes):
                    carry = counters[level] & plane
                    counters[level] = counters[level] ^ plane
                    plane = carry
        le = self._compare_le(counters, self._le_planes)
        ge_complement = self._compare_le(counters, self._ge_planes,
                                         strictly_below=True)
        out = (le & self._pos_mask) | (~ge_complement & self._neg_mask) \
            | self._const_one
        return out & self._valid_mask

    def _compare_le(self, counters: list[np.ndarray],
                    threshold_planes: np.ndarray,
                    strictly_below: bool = False) -> np.ndarray:
        """Bit-sliced comparator: per channel lane, is the counter value
        ``<= T`` (or ``< T`` with ``strictly_below``)?"""
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        gt = np.zeros_like(counters[0])
        lt = np.zeros_like(counters[0])
        eq = np.full_like(counters[0], ones)
        for level in range(self._n_counter_planes - 1, -1, -1):
            a = counters[level]
            t = threshold_planes[level]
            gt = gt | (eq & a & ~t)
            lt = lt | (eq & ~a & t)
            eq = eq & ~(a ^ t)
        return lt if strictly_below else ~gt

    def __repr__(self) -> str:
        f = self.folded
        kind = "depthwise, bit-sliced" if f.depthwise else "im2col"
        return (f"PackedBinaryConv2d({f.in_channels}->{f.out_channels}, "
                f"k={f.kernel_size}, {kind})")
