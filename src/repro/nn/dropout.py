"""Dropout regularization.

The ECG model uses dropout with keep probability 0.95 inside convolution
layers and 0.85 inside the classifier (§III-B).  We follow the "inverted
dropout" convention: activations are scaled by ``1/keep`` at train time so
evaluation is a plain identity.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Randomly zero activations with probability ``1 - keep_prob``."""

    def __init__(self, keep_prob: float = 0.5,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 < keep_prob <= 1.0:
            raise ValueError(f"keep_prob must be in (0, 1], got {keep_prob}")
        self.keep_prob = float(keep_prob)
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.keep_prob >= 1.0:
            return x
        mask = (self.rng.random(x.shape) < self.keep_prob) / self.keep_prob
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(keep={self.keep_prob})"
