"""Neural-network layers on top of :mod:`repro.tensor`.

Provides the full stack the paper's three models require: dense and
convolutional layers (real and binarized), batch normalization, pooling,
dropout, activations, losses, and containers.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.conv import Conv1d, Conv2d, DepthwiseConv2d, PointwiseConv2d
from repro.nn.pooling import (
    MaxPool1d, AvgPool1d, MaxPool2d, AvgPool2d, GlobalAvgPool2d)
from repro.nn.norm import BatchNorm1d, BatchNorm2d, InputNorm
from repro.nn.activations import ReLU, HardTanh, Sign, Tanh, Identity
from repro.nn.dropout import Dropout
from repro.nn.container import Sequential, ModuleList, Flatten
from repro.nn.loss import CrossEntropyLoss, MSELoss, SquaredHingeLoss
from repro.nn.stochastic import (stochastic_bits, stream_decode,
                                 StochasticBinarize)
from repro.nn.quant import (quant_scale, fake_quantize, QuantLinear,
                            QuantConv1d, QuantConv2d, ActivationQuantizer,
                            IntegerDense, deploy_dense_int)
from repro.nn.bitops import (pack_bits, unpack_bits, pad_correction,
                             packed_xnor_popcount,
                             packed_xnor_popcount_stacked,
                             packed_column_slice, PackedBinaryDense,
                             PackedOutputDense, PackedBinaryConv1d,
                             PackedBinaryConv2d, pack_feature_map,
                             unpack_feature_map, WORD_BITS)
from repro.nn.binary import (
    BinaryLinear, BinaryConv1d, BinaryConv2d, BinaryDepthwiseConv2d,
    clip_latent_weights,
    to_bits, from_bits, xnor_popcount, dot_from_popcount, threshold_bits,
    FoldedBinaryDense, FoldedOutputDense,
    fold_batchnorm_sign, fold_batchnorm_output)
from repro.nn.noise import (DEFAULT_LN_MARGIN, flip_probability,
                            rram_read_noise, RramReadNoise, set_read_noise)

__all__ = [
    "Module", "Parameter",
    "Linear",
    "Conv1d", "Conv2d", "DepthwiseConv2d", "PointwiseConv2d",
    "MaxPool1d", "AvgPool1d", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d",
    "BatchNorm1d", "BatchNorm2d", "InputNorm",
    "ReLU", "HardTanh", "Sign", "Tanh", "Identity",
    "Dropout",
    "Sequential", "ModuleList", "Flatten",
    "CrossEntropyLoss", "MSELoss", "SquaredHingeLoss",
    "BinaryLinear", "BinaryConv1d", "BinaryConv2d", "BinaryDepthwiseConv2d",
    "clip_latent_weights",
    "to_bits", "from_bits", "xnor_popcount", "dot_from_popcount",
    "threshold_bits",
    "FoldedBinaryDense", "FoldedOutputDense",
    "fold_batchnorm_sign", "fold_batchnorm_output",
    "stochastic_bits", "stream_decode", "StochasticBinarize",
    "quant_scale", "fake_quantize", "QuantLinear", "QuantConv1d",
    "QuantConv2d", "ActivationQuantizer", "IntegerDense", "deploy_dense_int",
    "pack_bits", "unpack_bits", "pad_correction", "packed_xnor_popcount",
    "packed_xnor_popcount_stacked", "packed_column_slice", "WORD_BITS",
    "PackedBinaryDense", "PackedOutputDense",
    "PackedBinaryConv1d", "PackedBinaryConv2d",
    "pack_feature_map", "unpack_feature_map",
    "DEFAULT_LN_MARGIN", "flip_probability", "rram_read_noise",
    "RramReadNoise", "set_read_noise",
]
