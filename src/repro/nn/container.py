"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.nn.module import Module
from repro.tensor import Tensor

__all__ = ["Sequential", "ModuleList", "Flatten"]


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers: list[Module] = []
        for i, layer in enumerate(layers):
            self.add(layer, name=str(i))

    def add(self, layer: Module, name: str | None = None) -> "Sequential":
        name = name if name is not None else str(len(self._layers))
        self._modules[name] = layer
        self._layers.append(layer)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def __repr__(self) -> str:
        inner = ",\n  ".join(repr(layer) for layer in self._layers)
        return f"Sequential(\n  {inner}\n)"


class ModuleList(Module):
    """A list of sub-modules, registered for parameter discovery."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Flatten(Module):
    """Collapse all non-batch axes (the "Flatten" rows of Tables I and II)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_from(1)

    def __repr__(self) -> str:
        return "Flatten()"
