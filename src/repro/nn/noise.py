"""RRAM read-noise injection for hardware-in-the-loop BNN training.

The Monte-Carlo engine models each XNOR sense decision as a comparison of
the 2T2R differential margin (in ln-resistance units) against a Gaussian
sense-amplifier offset: the stored bit flips whenever ``offset > margin``
(:mod:`repro.rram.array`).  Under the robustness-sweep convention —
device variability zeroed, only :class:`~repro.rram.SenseParameters.
offset_sigma` varies — every cell carries the same margin
``ln(median_hrs / median_lrs) = ln(20)``, so each of the ``fan_in`` bits
feeding a pre-threshold accumulation flips independently with

    p = Phi(-margin / sigma)

A flipped bit moves the ±1 dot product by ∓2, so over ``fan_in`` bits the
noisy dot is (by the central limit theorem)

    dot' ~ (1 - 2p) * dot + N(0, (2 * sqrt(fan_in * p * (1 - p)))^2)

This module injects exactly that surrogate into the training forward
pass: fresh offsets per scan (every forward call redraws, like the
hardware), identity in eval mode, and a straight-through backward — the
gradient ignores the noise, so the latent weights learn *through* the
perturbation.  Training with it is how the paper's models stay accurate
at sense sigmas where cleanly trained weights degrade (§II-B).

No :mod:`repro.rram` import happens at module load (``rram`` imports
``nn``); the default margin is the constant the default
:class:`~repro.rram.DeviceParameters` imply, asserted by tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor

__all__ = ["DEFAULT_LN_MARGIN", "flip_probability", "rram_read_noise",
           "RramReadNoise", "set_read_noise"]

# ln(median_hrs / median_lrs) of the default 2T2R cell (1e5 / 5e3) with
# device variability zeroed — the margin every sense decision compares its
# Gaussian offset against under the robustness-sweep convention.
DEFAULT_LN_MARGIN = math.log(20.0)


def flip_probability(sigma: float, margin: float = DEFAULT_LN_MARGIN
                     ) -> float:
    """Per-bit sense-decision flip probability ``Phi(-margin / sigma)``.

    ``sigma`` is the sense-amplifier offset sigma in ln-resistance units
    (the :class:`~repro.rram.SenseParameters.offset_sigma` axis of the
    Fig. 4-style sweeps); ``sigma <= 0`` reads perfectly.
    """
    if sigma <= 0.0:
        return 0.0
    return 0.5 * math.erfc(margin / (float(sigma) * math.sqrt(2.0)))


def rram_read_noise(x: Tensor, fan_in: int, sigma: float,
                    rng: np.random.Generator,
                    margin: float = DEFAULT_LN_MARGIN) -> Tensor:
    """Perturb a binarized pre-threshold accumulation like a noisy read.

    ``x`` holds ±1 dot products over ``fan_in`` XNOR bits.  Forward
    applies the CLT surrogate of per-bit flips (see module docstring);
    backward is straight-through (identity), the same STE convention as
    :meth:`~repro.tensor.Tensor.sign_ste` — noise shapes the loss
    landscape, not the gradient path.
    """
    p = flip_probability(sigma, margin)
    if p <= 0.0:
        return x
    std = 2.0 * math.sqrt(fan_in * p * (1.0 - p))
    offsets = rng.normal(0.0, std, size=x.shape)
    out_data = (1.0 - 2.0 * p) * x.data + offsets

    def backward(grad):
        return (grad,)

    return Tensor._make(out_data, (x,), backward)


class RramReadNoise(Module):
    """Noise-injection layer: noisy-read surrogate in train mode,
    identity in eval.

    Insert after a binary layer whose output is a pre-threshold ±1
    accumulation over ``fan_in`` bits (before the batch-norm / sign that
    the hardware folds into its thresholds).  The built-in
    ``noise_sigma`` knob on the ``Binary*`` layers (set via
    :func:`set_read_noise`) is usually more convenient; this standalone
    module exists for hand-built stacks and tests.
    """

    def __init__(self, fan_in: int, sigma: float,
                 rng: np.random.Generator | None = None,
                 margin: float = DEFAULT_LN_MARGIN):
        super().__init__()
        if fan_in < 1:
            raise ValueError(f"fan_in must be >= 1, got {fan_in}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.fan_in = int(fan_in)
        self.sigma = float(sigma)
        self.margin = float(margin)
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.sigma <= 0.0:
            return x
        return rram_read_noise(x, self.fan_in, self.sigma, self.rng,
                               self.margin)

    def __repr__(self) -> str:
        return (f"RramReadNoise(fan_in={self.fan_in}, "
                f"sigma={self.sigma}, margin={self.margin:.4g})")


def set_read_noise(model: Module, sigma: float,
                   rng: np.random.Generator | None = None,
                   margin: float = DEFAULT_LN_MARGIN,
                   layer_names: tuple[str, ...] | None = None) -> int:
    """Arm the read-noise knob on every binary layer of ``model``.

    Sets ``noise_sigma`` / ``noise_rng`` / ``noise_margin`` on each
    ``Binary*`` layer (all of them, or only those whose qualified module
    name is in ``layer_names``).  All armed layers share ``rng``, so a
    training run is deterministic given the generator's seed.  Returns
    the number of layers armed; ``sigma = 0`` disarms.
    """
    from repro.nn.binary import (BinaryConv1d, BinaryConv2d,
                                 BinaryDepthwiseConv2d, BinaryLinear)

    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = rng or np.random.default_rng()
    binary_types = (BinaryLinear, BinaryConv1d, BinaryConv2d,
                    BinaryDepthwiseConv2d)
    armed = 0
    for name, module in model.named_modules():
        if not isinstance(module, binary_types):
            continue
        if layer_names is not None and name not in layer_names:
            continue
        module.noise_sigma = float(sigma)
        module.noise_rng = rng
        module.noise_margin = float(margin)
        armed += 1
    if layer_names is not None and armed < len(layer_names):
        known = [name for name, m in model.named_modules()
                 if isinstance(m, binary_types)]
        missing = sorted(set(layer_names) - set(known))
        raise ValueError(f"no binary layer named {missing}; "
                         f"binary layers: {known}")
    return armed
