"""Multi-bit quantization: QAT layers and integer deployment kernels.

The paper uses an "eight-bit quantized network" as its stronger reference
point throughout (§I: 8-bit quantization "usually requires no retraining";
Table IV's 8-bit column; §III-C's "if we assume that convolutional layers can
be quantized to eight-bits precision").  Post-training quantization of
trained weights lives in :mod:`repro.analysis.quantization`; this module
supplies the rest of the quantization stack:

* :func:`fake_quantize` — quantize-dequantize with a straight-through
  gradient, the standard QAT primitive (Hubara et al., paper ref. [10]);
* :class:`QuantLinear` / :class:`QuantConv1d` / :class:`QuantConv2d` —
  drop-in layers whose forward pass computes with quantized weights, so the
  intermediate regime between the paper's REAL and FULL_BINARY modes can be
  trained and evaluated at any bit width;
* :class:`ActivationQuantizer` — running-range observer + fake-quant for
  activations;
* :class:`IntegerDense` / :func:`deploy_dense_int` — the integer-arithmetic
  kernel an 8-bit edge accelerator executes, bit-exact with the fake-quant
  float evaluation (the multi-bit analogue of the XNOR-popcount pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import init
from repro.nn.conv import conv1d_op, conv2d_op, _pair
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor

__all__ = [
    "quant_scale",
    "fake_quantize",
    "QuantLinear",
    "QuantConv1d",
    "QuantConv2d",
    "ActivationQuantizer",
    "IntegerDense",
    "deploy_dense_int",
]


def _check_bits(bits: int) -> int:
    bits = int(bits)
    if not 2 <= bits <= 16:
        raise ValueError(
            f"bits must be in [2, 16] (use repro.nn.binary for 1-bit), "
            f"got {bits}")
    return bits


def quant_scale(values: np.ndarray, bits: int) -> float:
    """Symmetric per-tensor scale: one LSB in real units.

    The integer grid is ``[-(2^(b-1) - 1), 2^(b-1) - 1]``; the scale maps
    the largest magnitude onto the grid edge.  Returns 1.0 for an all-zero
    tensor so callers never divide by zero.
    """
    bits = _check_bits(bits)
    q_max = 2 ** (bits - 1) - 1
    peak = float(np.abs(np.asarray(values)).max()) if np.asarray(
        values).size else 0.0
    if peak == 0.0:
        return 1.0
    return peak / q_max


def fake_quantize(x: Tensor, scale: float, bits: int) -> Tensor:
    """Quantize-dequantize with a straight-through gradient.

    Forward rounds ``x / scale`` to the integer grid and scales back;
    backward passes the gradient through inside the representable range and
    zeroes it outside (values pinned at the grid edge cannot move the loss
    by growing further).
    """
    bits = _check_bits(bits)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    q_max = 2 ** (bits - 1) - 1
    limit = scale * q_max
    quantized = np.clip(np.round(x.data / scale), -q_max, q_max) * scale
    mask = np.abs(x.data) <= limit

    def backward(grad):
        return (grad * mask,)

    return Tensor._make(quantized, (x,), backward)


class QuantLinear(Module):
    """Fully connected layer computing with ``bits``-wide quantized weights.

    Latent weights stay real for gradient descent; each forward pass
    re-derives the scale from the current weights (dynamic-range QAT).
    """

    def __init__(self, in_features: int, out_features: int, bits: int = 8,
                 bias: bool = True, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.bits = _check_bits(bits)
        self.weight = Parameter(init.glorot_uniform(
            (out_features, in_features), in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def quantized_weight(self) -> Tensor:
        scale = quant_scale(self.weight.data, self.bits)
        return fake_quantize(self.weight, scale, self.bits)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.quantized_weight().T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"QuantLinear(in={self.in_features}, "
                f"out={self.out_features}, bits={self.bits})")


class QuantConv1d(Module):
    """1-D convolution with ``bits``-wide quantized weights."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bits: int = 8,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.bits = _check_bits(bits)
        fan_in = in_channels * kernel_size
        self.weight = Parameter(init.glorot_uniform(
            (out_channels, in_channels, kernel_size), fan_in, out_channels,
            rng))

    def quantized_weight(self) -> Tensor:
        scale = quant_scale(self.weight.data, self.bits)
        return fake_quantize(self.weight, scale, self.bits)

    def forward(self, x: Tensor) -> Tensor:
        return conv1d_op(x, self.quantized_weight(), None, self.stride,
                         self.padding)

    def __repr__(self) -> str:
        return (f"QuantConv1d({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, bits={self.bits})")


class QuantConv2d(Module):
    """2-D convolution with ``bits``-wide quantized weights."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bits: int = 8,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.bits = _check_bits(bits)
        kh, kw = self.kernel_size
        fan_in = in_channels * kh * kw
        self.weight = Parameter(init.glorot_uniform(
            (out_channels, in_channels, kh, kw), fan_in, out_channels, rng))

    def quantized_weight(self) -> Tensor:
        scale = quant_scale(self.weight.data, self.bits)
        return fake_quantize(self.weight, scale, self.bits)

    def forward(self, x: Tensor) -> Tensor:
        return conv2d_op(x, self.quantized_weight(), None, self.stride,
                         self.padding)

    def __repr__(self) -> str:
        return (f"QuantConv2d({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, bits={self.bits})")


class ActivationQuantizer(Module):
    """Observe activation range during training, fake-quantize everywhere.

    Tracks an exponential moving average of the per-batch absolute maximum
    (the standard min-max observer, symmetric variant).  In eval mode the
    frozen range is used, so deployment sees a fixed scale.
    """

    def __init__(self, bits: int = 8, momentum: float = 0.9):
        super().__init__()
        self.bits = _check_bits(bits)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.register_buffer("running_peak", np.zeros(()))
        self.register_buffer("initialized", np.zeros((), dtype=bool))

    @property
    def scale(self) -> float:
        peak = float(self.running_peak)
        q_max = 2 ** (self.bits - 1) - 1
        return peak / q_max if peak > 0 else 1.0

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_peak = float(np.abs(x.data).max()) if x.size else 0.0
            if not bool(self.initialized):
                new_peak = batch_peak
                self.set_buffer("initialized", np.ones((), dtype=bool))
            else:
                new_peak = (self.momentum * float(self.running_peak)
                            + (1 - self.momentum) * batch_peak)
            self.set_buffer("running_peak", np.asarray(new_peak))
        return fake_quantize(x, self.scale, self.bits)

    def __repr__(self) -> str:
        return (f"ActivationQuantizer(bits={self.bits}, "
                f"peak={float(self.running_peak):.4g})")


# ---------------------------------------------------------------------------
# Integer deployment kernel
# ---------------------------------------------------------------------------
@dataclass
class IntegerDense:
    """A dense layer lowered to pure integer arithmetic.

    ``y = (W_q @ x_q) * (w_scale * x_scale) + bias`` with ``W_q``/``x_q``
    int-valued and the accumulation in int64 — what an 8-bit MAC array
    computes.  The float multiply at the end models the output requantizer /
    dequantizer stage.
    """

    weight_q: np.ndarray     # (out, in) integer grid values
    w_scale: float
    x_scale: float
    bits: int
    bias: np.ndarray | None  # (out,) float, applied after dequantization

    @property
    def in_features(self) -> int:
        return self.weight_q.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight_q.shape[0]

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Input-side quantizer (the ADC/requantizer in front of the MACs)."""
        q_max = 2 ** (self.bits - 1) - 1
        return np.clip(np.round(np.asarray(x, dtype=float) / self.x_scale),
                       -q_max, q_max).astype(np.int64)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Quantize input, integer matmul, dequantize, add bias."""
        x_q = self.quantize_input(x)
        acc = x_q @ self.weight_q.T.astype(np.int64)
        out = acc * (self.w_scale * self.x_scale)
        if self.bias is not None:
            out = out + self.bias[None, :]
        return out


def deploy_dense_int(layer: Linear | QuantLinear, x_scale: float,
                     bits: int = 8) -> IntegerDense:
    """Lower a trained dense layer to the integer kernel.

    ``x_scale`` is the input quantization scale (take it from the preceding
    :class:`ActivationQuantizer`, or derive it from calibration data with
    :func:`quant_scale`).  For a :class:`QuantLinear`, the deployed integer
    weights reproduce the training-time fake-quant weights exactly.
    """
    bits = _check_bits(bits)
    if x_scale <= 0:
        raise ValueError(f"x_scale must be positive, got {x_scale}")
    q_max = 2 ** (bits - 1) - 1
    w_scale = quant_scale(layer.weight.data, bits)
    weight_q = np.clip(np.round(layer.weight.data / w_scale),
                       -q_max, q_max).astype(np.int64)
    bias = None
    if getattr(layer, "bias", None) is not None:
        bias = layer.bias.data.copy()
    return IntegerDense(weight_q=weight_q, w_scale=w_scale, x_scale=x_scale,
                        bits=bits, bias=bias)
