"""Stochastic input binarization (paper ref. [14], Hirtzlin et al. 2019).

The paper notes (§I) that "beyond weight and activation, the memory
footprint can also be reduced with binary representation of the inputs
using stochastic sampling", citing the authors' companion work.  The idea:
an analog input ``x`` in [-1, 1] is encoded as a stream of ±1 samples with
``P(+1) = (1 + x) / 2``; averaging XNOR-popcount results over the stream
recovers the analog dot product to any desired precision, so even the first
network layer can run on the binary fabric without ADCs.

This module provides that encoder plus a deterministic variant, and a layer
that wraps the sampling for end-to-end training (the expectation of the
stochastic forward equals the hard-tanh forward, so the straight-through
gradient is unbiased).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor

__all__ = ["stochastic_bits", "stream_decode", "StochasticBinarize"]


def stochastic_bits(values: np.ndarray, n_samples: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Encode analog values as ``n_samples`` Bernoulli bit planes.

    ``values`` are clipped to [-1, 1]; the result has shape
    ``(n_samples,) + values.shape`` with ``P(bit=1) = (1 + x) / 2``, so the
    empirical mean of ``2*bit - 1`` converges to ``clip(x, -1, 1)`` at rate
    ``1/sqrt(n_samples)``.
    """
    if n_samples < 1:
        raise ValueError(f"need at least one sample, got {n_samples}")
    clipped = np.clip(np.asarray(values, dtype=float), -1.0, 1.0)
    probability = (1.0 + clipped) / 2.0
    draws = rng.random((n_samples,) + clipped.shape)
    return (draws < probability).astype(np.uint8)


def stream_decode(bit_planes: np.ndarray) -> np.ndarray:
    """Recover the analog estimate from bit planes: mean of ±1 samples."""
    planes = np.asarray(bit_planes, dtype=float)
    return (2.0 * planes - 1.0).mean(axis=0)


class StochasticBinarize(Module):
    """Layer form: stochastic ±1 sampling at train time.

    At train time every forward draws fresh ±1 samples (the straight-
    through gradient passes inside the clip window, as for ``Sign``).  At
    eval time the deterministic sign is used so inference is repeatable;
    hardware streams use :func:`stochastic_bits` explicitly.
    """

    def __init__(self, clip: float = 1.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.clip = clip
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training:
            return x.sign_ste(clip=self.clip)
        probability = (1.0 + np.clip(x.data, -1.0, 1.0)) / 2.0
        sampled = np.where(self.rng.random(x.shape) < probability, 1.0, -1.0)
        mask = np.abs(x.data) <= self.clip

        def backward(grad):
            return (grad * mask,)

        return Tensor.from_op(sampled, [x], backward)

    def __repr__(self) -> str:
        return f"StochasticBinarize(clip={self.clip})"
