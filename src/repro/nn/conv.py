"""Convolution layers (1-D temporal, 2-D, and depthwise-separable).

The paper's three networks use:

* ``Conv1d`` — ECG model (Table II), 1-D temporal convolutions over 12-lead
  signals, and the EEG model's per-electrode temporal convolution.
* ``Conv2d`` — the EEG model's spatial convolution across electrodes
  (Table I) and standard convolutions of MobileNet V1.
* ``DepthwiseConv2d`` + ``PointwiseConv2d`` — the depthwise-separable blocks
  that define MobileNet V1 (Howard et al., 2017, ref. [8] of the paper).

All forward/backward passes are lowered to GEMMs via im2col/col2im.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, col2im_1d, col2im_2d, im2col_1d, im2col_2d
from repro.tensor.im2col import conv_output_length

__all__ = ["Conv1d", "Conv2d", "DepthwiseConv2d", "PointwiseConv2d"]


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv1d_op(x: Tensor, weight: Tensor, bias: Tensor | None,
              stride: int, padding: int) -> Tensor:
    """Differentiable 1-D cross-correlation of ``(N, C_in, L)`` inputs.

    ``weight`` has shape ``(C_out, C_in, K)``.  Implemented as a standalone
    function so the binarized layers can reuse it with sign-STE weights.
    """
    n, c_in, length = x.shape
    c_out, c_in_w, kernel = weight.shape
    if c_in_w != c_in:
        raise ValueError(f"weight expects {c_in_w} input channels, got {c_in}")
    cols = im2col_1d(x.data, kernel, stride, padding)   # (N, L_out, C*K)
    w_mat = weight.data.reshape(c_out, c_in * kernel)
    out = cols @ w_mat.T                                # (N, L_out, C_out)
    if bias is not None:
        out = out + bias.data
    out = np.ascontiguousarray(out.transpose(0, 2, 1))  # (N, C_out, L_out)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        g = grad.transpose(0, 2, 1)                     # (N, L_out, C_out)
        g2 = g.reshape(-1, c_out)
        grad_w = (g2.T @ cols.reshape(-1, c_in * kernel)).reshape(weight.shape)
        grad_cols = g @ w_mat                           # (N, L_out, C*K)
        grad_x = col2im_1d(grad_cols, (n, c_in, length), kernel, stride, padding)
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(g2.sum(axis=0))
        return tuple(grads)

    return Tensor.from_op(out, parents, backward)


def conv2d_op(x: Tensor, weight: Tensor, bias: Tensor | None,
              stride: tuple[int, int], padding: tuple[int, int]) -> Tensor:
    """Differentiable 2-D cross-correlation of ``(N, C_in, H, W)`` inputs.

    ``weight`` has shape ``(C_out, C_in, KH, KW)``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in_w != c_in:
        raise ValueError(f"weight expects {c_in_w} input channels, got {c_in}")
    sh, sw = stride
    ph, pw = padding
    h_out = conv_output_length(h, kh, sh, ph)
    w_out = conv_output_length(w, kw, sw, pw)
    cols = im2col_2d(x.data, (kh, kw), (sh, sw), (ph, pw))
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    out = cols @ w_mat.T                                # (N, HW_out, C_out)
    if bias is not None:
        out = out + bias.data
    out = np.ascontiguousarray(
        out.transpose(0, 2, 1).reshape(n, c_out, h_out, w_out))

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        g = grad.reshape(n, c_out, h_out * w_out).transpose(0, 2, 1)
        g2 = g.reshape(-1, c_out)
        grad_w = (g2.T @ cols.reshape(-1, c_in * kh * kw)).reshape(weight.shape)
        grad_cols = g @ w_mat
        grad_x = col2im_2d(grad_cols, (n, c_in, h, w), (kh, kw), (sh, sw),
                           (ph, pw))
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(g2.sum(axis=0))
        return tuple(grads)

    return Tensor.from_op(out, parents, backward)


def depthwise_conv2d_op(x: Tensor, weight: Tensor, bias: Tensor | None,
                        stride: tuple[int, int],
                        padding: tuple[int, int]) -> Tensor:
    """Depthwise 2-D convolution: one ``(KH, KW)`` filter per input channel.

    ``weight`` has shape ``(C, KH, KW)``; channel ``c`` of the output only
    sees channel ``c`` of the input.  Uses an einsum over strided windows,
    avoiding the per-channel Python loop a grouped im2col would need.
    """
    n, c, h, w = x.shape
    c_w, kh, kw = weight.shape
    if c_w != c:
        raise ValueError(f"weight expects {c_w} channels, got {c}")
    sh, sw = stride
    ph, pw = padding
    x_pad = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) \
        if (ph or pw) else x.data
    h_out = conv_output_length(h, kh, sh, ph)
    w_out = conv_output_length(w, kw, sw, pw)
    s0, s1, s2, s3 = x_pad.strides
    windows = np.lib.stride_tricks.as_strided(
        x_pad, shape=(n, c, h_out, w_out, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3), writeable=False)
    out = np.einsum("nchwij,cij->nchw", windows, weight.data, optimize=True)
    if bias is not None:
        out = out + bias.data[None, :, None, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad):
        grad_w = np.einsum("nchwij,nchw->cij", windows, grad, optimize=True)
        grad_x_pad = np.zeros_like(x_pad)
        # Scatter-add each kernel tap's contribution back onto the input.
        for i in range(kh):
            for j in range(kw):
                grad_x_pad[:, :, i:i + h_out * sh:sh, j:j + w_out * sw:sw] += \
                    grad * weight.data[None, :, i, j, None, None]
        grad_x = grad_x_pad[:, :, ph:ph + h, pw:pw + w] if (ph or pw) \
            else grad_x_pad
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2, 3)))
        return tuple(grads)

    return Tensor.from_op(out, parents, backward)


class Conv1d(Module):
    """1-D convolution layer over ``(N, C_in, L)`` inputs (paper Eq. 2)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        fan_in = in_channels * kernel_size
        self.weight = Parameter(init.he_normal(
            (out_channels, in_channels, kernel_size), fan_in, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d_op(x, self.weight, self.bias, self.stride, self.padding)

    def output_length(self, length: int) -> int:
        return conv_output_length(length, self.kernel_size, self.stride,
                                  self.padding)

    def __repr__(self) -> str:
        return (f"Conv1d({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class Conv2d(Module):
    """2-D convolution layer over ``(N, C_in, H, W)`` inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        fan_in = in_channels * kh * kw
        self.weight = Parameter(init.he_normal(
            (out_channels, in_channels, kh, kw), fan_in, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d_op(x, self.weight, self.bias, self.stride, self.padding)

    def output_shape(self, h: int, w: int) -> tuple[int, int]:
        return (conv_output_length(h, self.kernel_size[0], self.stride[0],
                                   self.padding[0]),
                conv_output_length(w, self.kernel_size[1], self.stride[1],
                                   self.padding[1]))

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class DepthwiseConv2d(Module):
    """Per-channel spatial convolution, first half of a separable block."""

    def __init__(self, channels: int, kernel_size, stride=1, padding=0,
                 bias: bool = True, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.channels = channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        self.weight = Parameter(init.he_normal(
            (channels, kh, kw), kh * kw, rng))
        self.bias = Parameter(np.zeros(channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return depthwise_conv2d_op(x, self.weight, self.bias, self.stride,
                                   self.padding)

    def __repr__(self) -> str:
        return (f"DepthwiseConv2d({self.channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding})")


class PointwiseConv2d(Conv2d):
    """1x1 convolution, the channel-mixing half of a separable block."""

    def __init__(self, in_channels: int, out_channels: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__(in_channels, out_channels, kernel_size=1, stride=1,
                         padding=0, bias=bias, rng=rng)
