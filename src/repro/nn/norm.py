"""Batch normalization.

Batch-norm is load-bearing in BNN training (Courbariaux et al., ref. [12] of
the paper): the sign activation destroys scale information, so the learned
per-channel affine recenters pre-activations around the binarization
threshold.  At deployment, batch-norm folds into the integer popcount
threshold of Eq. (3) — see :mod:`repro.nn.binary`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor

__all__ = ["BatchNorm1d", "BatchNorm2d", "InputNorm"]


class _BatchNorm(Module):
    """Shared machinery; subclasses define which axes are reduced."""

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _reduce_axes(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def _shape_for_broadcast(self, x: Tensor) -> tuple[int, ...]:
        shape = [1] * x.ndim
        shape[1 if x.ndim > 1 else 0] = self.num_features
        return tuple(shape)

    def forward(self, x: Tensor) -> Tensor:
        axes = self._reduce_axes(x)
        bshape = self._shape_for_broadcast(x)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            count = int(np.prod([x.shape[a] for a in axes]))
            # Running stats use the unbiased variance, as frameworks do.
            unbiased = var.data * (count / max(count - 1, 1))
            self.set_buffer("running_mean",
                            (1 - self.momentum) * self.running_mean
                            + self.momentum * mean.data.reshape(-1))
            self.set_buffer("running_var",
                            (1 - self.momentum) * self.running_var
                            + self.momentum * unbiased.reshape(-1))
        else:
            mean = Tensor(self.running_mean.reshape(bshape))
            var = Tensor(self.running_var.reshape(bshape))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        gamma = self.gamma.reshape(bshape)
        beta = self.beta.reshape(bshape)
        return x_hat * gamma + beta

    def effective_threshold(self) -> np.ndarray:
        """Per-channel input value at which the normalized output crosses 0.

        ``sign(BN(z)) = sign(gamma) * sign(z - theta)`` with
        ``theta = mean - beta * sqrt(var + eps) / gamma``; used when folding
        batch-norm into the hardware popcount threshold.  Channels with
        ``gamma == 0`` have no crossing; they return ``+inf`` (output is
        ``sign(beta)`` everywhere).
        """
        std = np.sqrt(self.running_var + self.eps)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            theta = self.running_mean - self.beta.data * std / self.gamma.data
        theta = np.where(self.gamma.data == 0, np.inf, theta)
        return theta

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features})"


class BatchNorm1d(_BatchNorm):
    """Batch-norm over ``(N, C)`` or ``(N, C, L)`` inputs."""

    def _reduce_axes(self, x: Tensor) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 3:
            return (0, 2)
        raise ValueError(f"BatchNorm1d expects 2-D or 3-D input, got {x.ndim}-D")


class BatchNorm2d(_BatchNorm):
    """Batch-norm over ``(N, C, H, W)`` inputs."""

    def _reduce_axes(self, x: Tensor) -> tuple[int, ...]:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got {x.ndim}-D")
        return (0, 2, 3)


class InputNorm(Module):
    """Frozen per-channel standardization of the *input data*.

    The ECG model performs "batch normalization of the input data" (§III-B);
    statistics are fitted once on the training split and then fixed, which
    keeps the transform identical across training and cross-validated
    evaluation.
    """

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.register_buffer("mean", np.zeros(num_features))
        self.register_buffer("std", np.ones(num_features))

    def fit(self, data: np.ndarray) -> "InputNorm":
        """Fit statistics from ``(N, C, ...)`` training data."""
        axes = (0,) + tuple(range(2, data.ndim))
        self.set_buffer("mean", data.mean(axis=axes))
        self.set_buffer("std", data.std(axis=axes) + self.eps)
        return self

    def forward(self, x: Tensor) -> Tensor:
        shape = [1] * x.ndim
        shape[1] = self.num_features
        mean = Tensor(self.mean.reshape(shape))
        std = Tensor(self.std.reshape(shape))
        return (x - mean) / std

    def __repr__(self) -> str:
        return f"InputNorm({self.num_features})"
