"""Module/Parameter abstractions for building networks.

Mirrors the familiar framework design: a :class:`Module` owns
:class:`Parameter` leaves and sub-modules discovered through attribute
assignment, supports train/eval mode switching (batch-norm, dropout), and can
serialize its state to plain numpy arrays.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for network components.

    Sub-classes implement :meth:`forward`; parameters and child modules
    assigned as attributes are registered automatically.
    """

    def __init__(self):
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self._buffers: OrderedDict[str, np.ndarray] = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[key] = value
        object.__setattr__(self, key, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place of the old array."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield f"{prefix}{name}", buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({f"{name}!buffer": b.copy()
                      for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffer_owners: dict[str, tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                buffer_owners[full] = (module, buf_name)
        for key, value in state.items():
            if key.endswith("!buffer"):
                name = key[: -len("!buffer")]
                if name not in buffer_owners:
                    raise KeyError(f"unexpected buffer {name!r}")
                module, buf_name = buffer_owners[name]
                module.set_buffer(buf_name, value.copy())
            else:
                if key not in params:
                    raise KeyError(f"unexpected parameter {key!r}")
                if params[key].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{params[key].data.shape} vs {value.shape}")
                params[key].data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
