"""Activation modules.

The paper's networks use ReLU (EEG model) or hard-tanh (ECG model) in the
real-weight configuration, replaced by ``Sign`` in the binarized setting
(§III-A, §III-B).
"""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor

__all__ = ["ReLU", "HardTanh", "Sign", "Tanh", "Identity"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class HardTanh(Module):
    """Saturating linear activation ``clip(x, -1, 1)``."""

    def __init__(self, low: float = -1.0, high: float = 1.0):
        super().__init__()
        self.low = low
        self.high = high

    def forward(self, x: Tensor) -> Tensor:
        return x.hardtanh(self.low, self.high)

    def __repr__(self) -> str:
        return f"HardTanh({self.low}, {self.high})"


class Sign(Module):
    """Binarizing activation with straight-through gradient (paper Eq. 3).

    ``clip`` sets the STE window: gradients flow only where ``|x| <= clip``.
    """

    def __init__(self, clip: float = 1.0):
        super().__init__()
        self.clip = clip

    def forward(self, x: Tensor) -> Tensor:
        return x.sign_ste(clip=self.clip)

    def __repr__(self) -> str:
        return f"Sign(clip={self.clip})"


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Identity(Module):
    """No-op, useful as a placeholder when layers are optional."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"
