"""Binarized layers and the XNOR-popcount arithmetic of paper Eq. (3).

Training-time layers (:class:`BinaryLinear`, :class:`BinaryConv1d`,
:class:`BinaryConv2d`) keep *latent* real-valued weights; the forward pass
binarizes them to ±1 with the straight-through estimator, so gradient descent
updates the latent weights while the network only ever computes with binary
ones (Courbariaux et al., ref. [12] of the paper).

Deployment-time helpers translate a trained binary layer + batch-norm + sign
stack into the integer pipeline the RRAM hardware executes:

    y = sign(popcount(XNOR(w_j, x_j)) - b)                       (Eq. 3)

with the batch-norm folded into the per-neuron threshold ``b``.  These
functions are pure math; :mod:`repro.rram.accelerator` wires them to the
device model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import init
from repro.nn.conv import conv1d_op, conv2d_op, depthwise_conv2d_op, _pair
from repro.nn.module import Module, Parameter
from repro.nn.noise import DEFAULT_LN_MARGIN, rram_read_noise
from repro.nn.norm import _BatchNorm
from repro.tensor import Tensor

__all__ = [
    "BinaryLinear",
    "BinaryConv1d",
    "BinaryConv2d",
    "BinaryDepthwiseConv2d",
    "clip_latent_weights",
    "to_bits",
    "from_bits",
    "xnor_popcount",
    "dot_from_popcount",
    "threshold_bits",
    "FoldedBinaryDense",
    "FoldedOutputDense",
    "fold_batchnorm_sign",
    "fold_batchnorm_output",
]


# ---------------------------------------------------------------------------
# Training-time binarized layers
# ---------------------------------------------------------------------------
class _BinaryNoiseMixin:
    """Read-noise knob shared by every binary layer.

    Each layer computes a pre-threshold ±1 accumulation over ``fan_in``
    XNOR bits — exactly what the RRAM word-line scan produces — so the
    hardware-in-the-loop surrogate (:func:`repro.nn.noise.
    rram_read_noise`) applies at the layer output, before the batch-norm
    / sign the deployment folds into thresholds.  Disarmed
    (``noise_sigma = 0``) by default; :func:`repro.nn.noise.
    set_read_noise` arms a whole model.  Train-mode only: eval forwards
    are untouched, so folding/compilation see the noise-free function.
    """

    def _init_read_noise(self) -> None:
        self.noise_sigma = 0.0
        self.noise_rng: np.random.Generator | None = None
        self.noise_margin = DEFAULT_LN_MARGIN

    def _read_noise(self, out: Tensor, fan_in: int) -> Tensor:
        if not self.training or self.noise_sigma <= 0.0:
            return out
        if self.noise_rng is None:
            self.noise_rng = np.random.default_rng()
        return rram_read_noise(out, fan_in, self.noise_sigma,
                               self.noise_rng, self.noise_margin)


class BinaryLinear(_BinaryNoiseMixin, Module):
    """Fully connected layer with ±1 weights (latent-real training).

    No additive bias is learned: in BNNs the following batch-norm supplies
    the per-neuron threshold (the ``b`` of Eq. 3).
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform(
            (out_features, in_features), in_features, out_features, rng))
        self._init_read_noise()

    def binary_weight(self) -> Tensor:
        return self.weight.sign_ste()

    def forward(self, x: Tensor) -> Tensor:
        return self._read_noise(x @ self.binary_weight().T,
                                self.in_features)

    def __repr__(self) -> str:
        return f"BinaryLinear(in={self.in_features}, out={self.out_features})"


class BinaryConv1d(_BinaryNoiseMixin, Module):
    """1-D convolution with ±1 weights."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        fan_in = in_channels * kernel_size
        self.weight = Parameter(init.glorot_uniform(
            (out_channels, in_channels, kernel_size), fan_in, out_channels, rng))
        self._init_read_noise()

    def binary_weight(self) -> Tensor:
        return self.weight.sign_ste()

    def forward(self, x: Tensor) -> Tensor:
        out = conv1d_op(x, self.binary_weight(), None, self.stride,
                        self.padding)
        return self._read_noise(out, self.in_channels * self.kernel_size)

    def __repr__(self) -> str:
        return (f"BinaryConv1d({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class BinaryConv2d(_BinaryNoiseMixin, Module):
    """2-D convolution with ±1 weights."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        fan_in = in_channels * kh * kw
        self.weight = Parameter(init.glorot_uniform(
            (out_channels, in_channels, kh, kw), fan_in, out_channels, rng))
        self._init_read_noise()

    def binary_weight(self) -> Tensor:
        return self.weight.sign_ste()

    def forward(self, x: Tensor) -> Tensor:
        out = conv2d_op(x, self.binary_weight(), None, self.stride,
                        self.padding)
        kh, kw = self.kernel_size
        return self._read_noise(out, self.in_channels * kh * kw)

    def __repr__(self) -> str:
        return (f"BinaryConv2d({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class BinaryDepthwiseConv2d(_BinaryNoiseMixin, Module):
    """Depthwise 2-D convolution with ±1 weights (fully binary MobileNet)."""

    def __init__(self, channels: int, kernel_size, stride=1, padding=0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.channels = channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        self.weight = Parameter(init.glorot_uniform(
            (channels, kh, kw), kh * kw, kh * kw, rng))
        self._init_read_noise()

    def binary_weight(self) -> Tensor:
        return self.weight.sign_ste()

    def forward(self, x: Tensor) -> Tensor:
        out = depthwise_conv2d_op(x, self.binary_weight(), None, self.stride,
                                  self.padding)
        kh, kw = self.kernel_size
        return self._read_noise(out, kh * kw)

    def __repr__(self) -> str:
        return (f"BinaryDepthwiseConv2d({self.channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


def clip_latent_weights(module: Module, limit: float = 1.0) -> None:
    """Clip latent weights of all binary layers into ``[-limit, limit]``.

    Standard BNN training practice: outside the clip window the STE gradient
    is zero, so unclipped latent weights would drift without bound and never
    flip sign again.  Call after each optimizer step.
    """
    binary_types = (BinaryLinear, BinaryConv1d, BinaryConv2d,
                    BinaryDepthwiseConv2d)
    for sub in module.modules():
        if isinstance(sub, binary_types):
            np.clip(sub.weight.data, -limit, limit, out=sub.weight.data)


# ---------------------------------------------------------------------------
# Integer XNOR-popcount arithmetic (Eq. 3)
# ---------------------------------------------------------------------------
def to_bits(pm1: np.ndarray) -> np.ndarray:
    """Map ±1 values to bits: +1 -> 1, -1 -> 0 (zero maps to 1, matching
    the ``sign(0) = +1`` training convention)."""
    return (np.asarray(pm1) >= 0).astype(np.uint8)


def from_bits(bits: np.ndarray) -> np.ndarray:
    """Map bits back to ±1 floats."""
    return np.where(np.asarray(bits) != 0, 1.0, -1.0)


def xnor_popcount(x_bits: np.ndarray, w_bits: np.ndarray) -> np.ndarray:
    """popcount(XNOR(x, w)) for every (row of x, row of w) pair.

    ``x_bits``: ``(N, n)`` activation bits; ``w_bits``: ``(m, n)`` weight
    bits.  Returns an ``(N, m)`` integer array counting agreeing positions —
    exactly what the XNOR-augmented sense amplifiers + popcount logic of
    Fig. 5 produce.
    """
    x = np.asarray(x_bits, dtype=np.int64)
    w = np.asarray(w_bits, dtype=np.int64)
    if x.shape[-1] != w.shape[-1]:
        raise ValueError(f"bit-width mismatch: {x.shape} vs {w.shape}")
    agree_ones = x @ w.T
    agree_zeros = (1 - x) @ (1 - w).T
    return agree_ones + agree_zeros


def dot_from_popcount(popcount: np.ndarray, width: int) -> np.ndarray:
    """Convert an XNOR popcount over ``width`` bits to the ±1 dot product.

    ``sum_j w_j x_j = 2 * popcount - width`` because each agreeing position
    contributes +1 and each disagreeing one -1.
    """
    return 2 * np.asarray(popcount, dtype=np.int64) - width


def threshold_bits(dot: np.ndarray, theta: np.ndarray,
                   gamma_sign: np.ndarray,
                   beta_sign: np.ndarray) -> np.ndarray:
    """The folded ``sign(BN(.))`` threshold unit shared by every substrate.

    ``output_bit = (dot >= theta)`` for positive ``gamma``, flipped for
    negative ``gamma``, and the constant ``sign(beta)`` when ``gamma == 0``
    (the batch-norm output no longer depends on its input).  All operands
    broadcast, so callers shape ``theta``/``gamma_sign``/``beta_sign`` for
    dense ``(N, M)`` or convolutional ``(N, C, ...)`` layouts alike.
    """
    pos = dot >= theta
    neg = dot <= theta
    out = np.where(gamma_sign > 0, pos,
                   np.where(gamma_sign < 0, neg, beta_sign >= 0))
    return out.astype(np.uint8)


# ---------------------------------------------------------------------------
# Batch-norm folding into hardware thresholds
# ---------------------------------------------------------------------------
@dataclass
class FoldedBinaryDense:
    """A binary dense layer folded for hardware: compare popcount to a
    per-neuron threshold.

    ``output_bit[i] = (2*pc - n >= theta[i])`` when ``gamma[i] > 0``,
    flipped for negative ``gamma``; constant for ``gamma == 0``.
    """

    weight_bits: np.ndarray          # (out, in) uint8
    theta: np.ndarray                # (out,) float threshold on the ±1 dot
    gamma_sign: np.ndarray           # (out,) in {-1, 0, +1}
    beta_sign: np.ndarray            # (out,) sign of beta, used when gamma==0

    @property
    def in_features(self) -> int:
        return self.weight_bits.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight_bits.shape[0]

    def forward_bits(self, x_bits: np.ndarray) -> np.ndarray:
        """Exact integer inference: activation bits in, activation bits out."""
        pc = xnor_popcount(x_bits, self.weight_bits)
        dot = dot_from_popcount(pc, self.in_features)
        return threshold_bits(dot, self.theta[None, :],
                              self.gamma_sign[None, :],
                              self.beta_sign[None, :])


@dataclass
class FoldedOutputDense:
    """The final binary classifier layer folded for hardware.

    No sign follows the last layer (softmax is training-only), so the
    hardware computes the ±1 dot product and applies the batch-norm affine
    per class; the predicted class is the argmax.
    """

    weight_bits: np.ndarray          # (classes, in) uint8
    scale: np.ndarray                # (classes,) gamma / sqrt(var + eps)
    offset: np.ndarray               # (classes,) beta - scale * mean

    @property
    def in_features(self) -> int:
        return self.weight_bits.shape[1]

    def forward_scores(self, x_bits: np.ndarray) -> np.ndarray:
        pc = xnor_popcount(x_bits, self.weight_bits)
        dot = dot_from_popcount(pc, self.in_features)
        return dot * self.scale[None, :] + self.offset[None, :]

    def predict(self, x_bits: np.ndarray) -> np.ndarray:
        return self.forward_scores(x_bits).argmax(axis=1)


def fold_batchnorm_sign(layer: BinaryLinear,
                        bn: _BatchNorm) -> FoldedBinaryDense:
    """Fold ``sign(BN(W_b x))`` into a popcount-threshold dense layer.

    Uses the batch-norm running statistics (the deployment-time statistics).
    The resulting integer pipeline is bit-exact with the floating-point
    evaluation stack — verified by property tests.
    """
    theta = bn.effective_threshold()
    gamma_sign = np.sign(bn.gamma.data)
    beta_sign = np.sign(bn.beta.data)
    # Convention: sign(0) = +1.
    beta_sign = np.where(beta_sign == 0, 1.0, beta_sign)
    return FoldedBinaryDense(
        weight_bits=to_bits(layer.weight.data),
        theta=theta,
        gamma_sign=gamma_sign,
        beta_sign=beta_sign,
    )


def fold_batchnorm_output(layer: BinaryLinear,
                          bn: _BatchNorm) -> FoldedOutputDense:
    """Fold the final ``BN(W_b x)`` (no sign) into scale/offset per class."""
    std = np.sqrt(bn.running_var + bn.eps)
    scale = bn.gamma.data / std
    offset = bn.beta.data - scale * bn.running_mean
    return FoldedOutputDense(
        weight_bits=to_bits(layer.weight.data),
        scale=scale,
        offset=offset,
    )
