"""Weight initialization schemes.

Binarized networks are sensitive to initialization because the latent real
weights must straddle zero for the sign function to produce informative
patterns; Glorot-style scaling keeps pre-activations in the linear region of
the hard-tanh STE at the start of training.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "uniform", "zeros", "ones"]


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], fan_in: int,
              rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, sqrt(2 / fan_in)), suited to ReLU feature extractors."""
    return rng.normal(0.0, math.sqrt(2.0 / fan_in), size=shape)


def uniform(shape: tuple[int, ...], low: float, high: float,
            rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
