"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 517
editable installs fail; ``pip install -e . --no-build-isolation
--no-use-pep517`` uses this file instead.
"""

from setuptools import setup

setup()
